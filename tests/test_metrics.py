"""Metric-general geometry core: unit kernels, cross-checks, byte-identity.

Three layers of coverage for the pluggable-metric refactor:

* kernel unit tests — ``resolve_metric`` parsing/canonicalization and every
  batch kernel checked against straightforward per-pair loops;
* algorithm cross-checks — EMST and HDBSCAN* under manhattan / chebyshev /
  minkowski(p=3) must match brute-force references on small random inputs;
* the Euclidean byte-identity gate — the refactored engine's Euclidean path
  must reproduce the captured pre-refactor (PR-3) outputs bit for bit at
  ``num_threads`` 1, 2 and 4 (references in ``tests/data``).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.core.metric import (
    CHEBYSHEV,
    EUCLIDEAN,
    MANHATTAN,
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    MinkowskiMetric,
    resolve_metric,
)
from repro.emst import emst, emst_bruteforce
from repro.hdbscan import hdbscan
from repro.hdbscan.bruteforce import hdbscan_mst_bruteforce
from repro.hdbscan.core_distance import core_distances
from repro.parallel.pool import current_workspace
from repro.spatial.kdtree import KDTree
from repro.spatial.knn import knn, knn_bruteforce

REFS_PATH = Path(__file__).parent / "data" / "euclidean_pr3_refs.npz"

NON_EUCLIDEAN = ("manhattan", "chebyshev", "minkowski:3")


def reference_distance(p, q, spec):
    diff = np.abs(np.asarray(p, dtype=np.float64) - np.asarray(q, dtype=np.float64))
    if spec == "euclidean":
        return float(np.sqrt((diff**2).sum()))
    if spec == "manhattan":
        return float(diff.sum())
    if spec == "chebyshev":
        return float(diff.max())
    assert spec == "minkowski:3"
    return float((diff**3).sum() ** (1.0 / 3.0))


class TestResolveMetric:
    def test_default_is_euclidean(self):
        assert resolve_metric(None) is EUCLIDEAN
        assert resolve_metric("euclidean") is EUCLIDEAN
        assert resolve_metric("l2") is EUCLIDEAN

    def test_aliases(self):
        assert resolve_metric("cityblock") is MANHATTAN
        assert resolve_metric("l1") is MANHATTAN
        assert resolve_metric("linf") is CHEBYSHEV
        assert resolve_metric("maximum") is CHEBYSHEV

    def test_instances_pass_through(self):
        metric = MinkowskiMetric(3)
        assert resolve_metric(metric) is metric

    def test_minkowski_canonicalization(self):
        assert isinstance(resolve_metric("minkowski:1"), ManhattanMetric)
        assert isinstance(resolve_metric("minkowski:2"), EuclideanMetric)
        assert isinstance(resolve_metric("minkowski:inf"), ChebyshevMetric)
        metric = resolve_metric("minkowski:3")
        assert isinstance(metric, MinkowskiMetric) and metric.p == 3.0
        assert resolve_metric("minkowski", p=2.5).p == 2.5

    def test_spec_round_trips(self):
        for spec in ("euclidean", "manhattan", "chebyshev", "minkowski:3"):
            metric = resolve_metric(spec)
            assert resolve_metric(metric.spec()) == metric

    def test_errors(self):
        with pytest.raises(InvalidParameterError):
            resolve_metric("bogus")
        with pytest.raises(InvalidParameterError):
            resolve_metric("minkowski")  # needs an order
        with pytest.raises(InvalidParameterError):
            resolve_metric("minkowski:0.5")  # p < 1
        with pytest.raises(InvalidParameterError):
            resolve_metric("minkowski:nope")
        with pytest.raises(InvalidParameterError):
            resolve_metric(3.14)

    def test_inline_order_on_fixed_metrics(self):
        # A matching inline order is accepted; a conflicting one never
        # silently drops the order.
        assert resolve_metric("chebyshev:inf") is CHEBYSHEV
        assert resolve_metric("manhattan:1") is MANHATTAN
        assert resolve_metric("euclidean:2") is EUCLIDEAN
        for spec in ("chebyshev:5", "manhattan:5", "euclidean:3"):
            with pytest.raises(InvalidParameterError):
                resolve_metric(spec)

    def test_equality_and_hash(self):
        assert MinkowskiMetric(3) == MinkowskiMetric(3.0)
        assert EuclideanMetric() == EUCLIDEAN
        assert len({MinkowskiMetric(3), MinkowskiMetric(3), MANHATTAN}) == 2


@pytest.mark.parametrize("spec", ("euclidean",) + NON_EUCLIDEAN)
class TestMetricKernels:
    def test_point_distance(self, spec, rng):
        metric = resolve_metric(spec)
        for _ in range(10):
            p, q = rng.normal(size=(2, 4))
            assert metric.point_distance(p, q) == pytest.approx(
                reference_distance(p, q, spec)
            )
        assert metric.point_distance([0.0, 0.0], [0.0, 0.0]) == 0.0

    def test_cross_and_pairwise(self, spec, rng):
        metric = resolve_metric(spec)
        a = rng.normal(size=(7, 3))
        b = rng.normal(size=(5, 3))
        cross = metric.cross_distances(a, b)
        assert cross.shape == (7, 5)
        for i in range(7):
            for j in range(5):
                assert cross[i, j] == pytest.approx(
                    reference_distance(a[i], b[j], spec), abs=1e-12
                )
        pair = metric.pairwise_distances(a)
        assert np.allclose(np.diag(pair), 0.0, atol=1e-7)
        assert np.allclose(pair, pair.T)

    def test_diff_norms_and_exact_edge_weights(self, spec, rng):
        metric = resolve_metric(spec)
        points = rng.normal(size=(20, 3))
        ia = rng.integers(0, 20, size=12)
        ib = rng.integers(0, 20, size=12)
        weights = metric.exact_edge_weights(points, ia, ib)
        for w, i, j in zip(weights, ia, ib):
            assert w == pytest.approx(
                reference_distance(points[i], points[j], spec), abs=1e-12
            )
        core = rng.random(20) * 2.0
        mutual = metric.exact_edge_weights(points, ia, ib, core)
        expected = np.maximum(weights, np.maximum(core[ia], core[ib]))
        assert np.allclose(mutual, expected)

    def test_block_cross_matches_cross(self, spec, rng):
        metric = resolve_metric(spec)
        pts_a = rng.normal(size=(4, 6, 3))
        pts_b = rng.normal(size=(4, 5, 3))
        block = metric.block_cross_distances(pts_a, pts_b, current_workspace())
        for g in range(4):
            expected = metric.cross_distances(pts_a[g], pts_b[g])
            assert np.allclose(block[g], expected, atol=1e-10)

    def test_box_radii_bound_points(self, spec, rng):
        metric = resolve_metric(spec)
        points = rng.normal(size=(50, 3))
        lower, upper = points.min(axis=0), points.max(axis=0)
        center = (lower + upper) * 0.5
        radius = float(metric.box_radii((upper - lower)[None, :])[0])
        distances = metric.distances_to_point(points, center)
        assert distances.max() <= radius + 1e-12

    def test_gap_norm_is_point_to_box_minimum(self, spec, rng):
        metric = resolve_metric(spec)
        lower = np.zeros(2)
        upper = np.ones(2)
        query = np.array([2.0, -0.5])
        gap = np.maximum(np.maximum(lower - query, query - upper), 0.0)
        bound = float(metric.diff_norms(gap[None, :])[0])
        # Exhaustive grid inside the box: no point may beat the bound.
        grid = np.stack(
            np.meshgrid(np.linspace(0, 1, 21), np.linspace(0, 1, 21)), axis=-1
        ).reshape(-1, 2)
        actual = metric.distances_to_point(grid, query).min()
        assert bound <= actual + 1e-12
        assert bound == pytest.approx(actual, abs=0.1)  # grid resolution


@pytest.mark.parametrize("spec", NON_EUCLIDEAN)
class TestNonEuclideanAlgorithms:
    def test_knn_matches_bruteforce_sort(self, spec, small_points_2d):
        metric = resolve_metric(spec)
        points = small_points_2d
        tree = KDTree(points, leaf_size=4, metric=metric)
        idx_tree, dist_tree = knn(tree, 5)
        full = metric.pairwise_distances(points)
        expected = np.sort(full, axis=1)[:, :5]
        assert np.allclose(dist_tree, expected, atol=1e-12)
        _, dist_brute = knn_bruteforce(points, 5, metric=metric)
        assert np.allclose(dist_brute, expected, atol=1e-12)

    @pytest.mark.parametrize("method", ["memogfk", "gfk", "naive", "dualtree-boruvka"])
    def test_emst_matches_bruteforce(self, spec, method, small_points_2d, small_points_3d):
        for points in (small_points_2d, small_points_3d[:100]):
            result = emst(points, method=method, metric=spec)
            reference = emst_bruteforce(points, metric=spec)
            assert result.is_spanning_tree()
            assert result.total_weight == pytest.approx(
                reference.total_weight, abs=1e-9
            )

    @pytest.mark.parametrize("method", ["memogfk", "gantao"])
    def test_hdbscan_mst_matches_bruteforce(self, spec, method, small_points_2d):
        points = small_points_2d
        reference = hdbscan_mst_bruteforce(points, min_pts=5, metric=spec)
        result = hdbscan(points, min_pts=5, method=method, metric=spec)
        assert result.mst.is_spanning_tree()
        assert result.mst.total_weight == pytest.approx(
            reference.total_weight, abs=1e-9
        )

    def test_thread_determinism(self, spec, small_points_2d):
        reference = emst(small_points_2d, metric=spec, num_threads=1)
        threaded = emst(small_points_2d, metric=spec, num_threads=4)
        for left, right in zip(
            reference.edges.as_arrays(), threaded.edges.as_arrays()
        ):
            assert np.array_equal(left, right)

    def test_core_distances_match_matrix(self, spec, small_points_2d):
        metric = resolve_metric(spec)
        points = small_points_2d
        expected = np.sort(metric.pairwise_distances(points), axis=1)[:, 4]
        for method in ("bruteforce", "kdtree"):
            got = core_distances(points, 5, method=method, metric=metric)
            assert np.allclose(got, expected, atol=1e-12)


class TestMetricGates:
    def test_delaunay_is_euclidean_only(self, small_points_2d):
        with pytest.raises(InvalidParameterError):
            emst(small_points_2d, method="delaunay", metric="manhattan")
        # Euclidean still works.
        result = emst(small_points_2d, method="delaunay")
        assert result.is_spanning_tree()

    def test_core_distance_tree_metric_mismatch(self, small_points_2d):
        tree = KDTree(small_points_2d, leaf_size=8, metric="manhattan")
        with pytest.raises(InvalidParameterError):
            core_distances(
                small_points_2d, 5, method="kdtree", tree=tree, metric="euclidean"
            )
        # Matching metric is accepted.
        got = core_distances(
            small_points_2d, 5, method="kdtree", tree=tree, metric="manhattan"
        )
        assert got.shape == (small_points_2d.shape[0],)

    def test_tree_carries_metric(self, small_points_2d):
        tree = KDTree(small_points_2d, metric="chebyshev")
        assert tree.metric is CHEBYSHEV
        assert tree.flat.metric is CHEBYSHEV
        # Chebyshev radii are half the widest extent, never larger than L2.
        euclid = KDTree(small_points_2d)
        assert np.all(tree.flat.node_radius <= euclid.flat.node_radius + 1e-15)


@pytest.fixture(scope="module")
def pr3_refs():
    return np.load(REFS_PATH)


@pytest.mark.parametrize("num_threads", [1, 2, 4])
class TestEuclideanByteIdentity:
    """The refactored Euclidean path reproduces the captured PR-3 outputs."""

    @pytest.mark.parametrize("tag", ["2d", "3d"])
    @pytest.mark.parametrize("method", ["memogfk", "gfk", "naive"])
    def test_emst_edges(self, num_threads, tag, method, pr3_refs):
        points = pr3_refs[f"points_{tag}"]
        result = emst(points, method=method, num_threads=num_threads)
        u, v, w = result.edges.as_arrays()
        assert np.array_equal(u, pr3_refs[f"emst_{method}_{tag}_u"])
        assert np.array_equal(v, pr3_refs[f"emst_{method}_{tag}_v"])
        assert np.array_equal(w, pr3_refs[f"emst_{method}_{tag}_w"])

    @pytest.mark.parametrize("tag", ["2d", "3d"])
    def test_hdbscan_pipeline(self, num_threads, tag, pr3_refs):
        points = pr3_refs[f"points_{tag}"]
        result = hdbscan(points, min_pts=10, num_threads=num_threads)
        u, v, w = result.mst.edges.as_arrays()
        assert np.array_equal(u, pr3_refs[f"hdbscan_memogfk_{tag}_u"])
        assert np.array_equal(v, pr3_refs[f"hdbscan_memogfk_{tag}_v"])
        assert np.array_equal(w, pr3_refs[f"hdbscan_memogfk_{tag}_w"])
        assert np.array_equal(
            result.core_distances, pr3_refs[f"hdbscan_memogfk_{tag}_core"]
        )
        assert np.array_equal(
            result.dendrogram.to_linkage_matrix(),
            pr3_refs[f"hdbscan_memogfk_{tag}_linkage"],
        )
        assert np.array_equal(
            result.eom_labels(min_cluster_size=5),
            pr3_refs[f"hdbscan_memogfk_{tag}_eom"],
        )

    @pytest.mark.parametrize("tag", ["2d", "3d"])
    def test_gantao_edges(self, num_threads, tag, pr3_refs):
        points = pr3_refs[f"points_{tag}"]
        result = hdbscan(
            points, min_pts=10, method="gantao", num_threads=num_threads
        )
        u, v, w = result.mst.edges.as_arrays()
        assert np.array_equal(u, pr3_refs[f"hdbscan_gantao_{tag}_u"])
        assert np.array_equal(v, pr3_refs[f"hdbscan_gantao_{tag}_v"])
        assert np.array_equal(w, pr3_refs[f"hdbscan_gantao_{tag}_w"])
