"""Tests for union-find, list ranking and Euler tours."""

import numpy as np
import pytest

from repro.parallel import UnionFind, build_euler_tour, list_rank
from repro.parallel.eulertour import vertex_distances_via_listrank


class TestUnionFind:
    def test_initially_all_separate(self):
        union_find = UnionFind(5)
        assert union_find.num_components == 5
        assert not union_find.connected(0, 1)

    def test_union_connects(self):
        union_find = UnionFind(4)
        assert union_find.union(0, 1)
        assert union_find.connected(0, 1)
        assert union_find.num_components == 3

    def test_union_same_component_returns_false(self):
        union_find = UnionFind(4)
        union_find.union(0, 1)
        union_find.union(1, 2)
        assert not union_find.union(0, 2)
        assert union_find.num_components == 2

    def test_transitive_connectivity(self):
        union_find = UnionFind(6)
        union_find.union(0, 1)
        union_find.union(2, 3)
        union_find.union(1, 2)
        assert union_find.connected(0, 3)
        assert not union_find.connected(0, 4)

    def test_find_is_consistent_representative(self):
        union_find = UnionFind(5)
        union_find.union(0, 1)
        union_find.union(3, 4)
        assert union_find.find(0) == union_find.find(1)
        assert union_find.find(3) == union_find.find(4)
        assert union_find.find(0) != union_find.find(3)

    def test_component_labels(self):
        union_find = UnionFind(4)
        union_find.union(0, 2)
        labels = union_find.component_labels()
        assert labels[0] == labels[2]
        assert labels[1] != labels[0]

    def test_all_merged_single_component(self):
        union_find = UnionFind(10)
        for index in range(9):
            union_find.union(index, index + 1)
        assert union_find.num_components == 1

    def test_size_property(self):
        assert UnionFind(7).size == 7

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_zero_elements(self):
        union_find = UnionFind(0)
        assert union_find.num_components == 0


class TestListRank:
    def test_simple_chain_suffix_sums(self):
        # 0 -> 1 -> 2 -> 3 (terminal), all values 1.
        successor = [1, 2, 3, -1]
        ranks = list_rank(successor, [1.0, 1.0, 1.0, 1.0])
        assert list(ranks) == [4.0, 3.0, 2.0, 1.0]

    def test_values_propagate(self):
        successor = [1, 2, -1]
        ranks = list_rank(successor, [10.0, 20.0, 5.0])
        assert list(ranks) == [35.0, 25.0, 5.0]

    def test_single_node(self):
        ranks = list_rank([-1], [42.0])
        assert list(ranks) == [42.0]

    def test_empty_list(self):
        ranks = list_rank([], [])
        assert len(ranks) == 0

    def test_long_chain_matches_cumsum(self):
        n = 200
        successor = list(range(1, n)) + [-1]
        values = np.arange(1.0, n + 1.0)
        ranks = list_rank(successor, values)
        expected = np.cumsum(values[::-1])[::-1]
        assert np.allclose(ranks, expected)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            list_rank([1, -1], [1.0])

    def test_cycle_detected(self):
        with pytest.raises(ValueError):
            list_rank([1, 0], [1.0, 1.0])


class TestEulerTour:
    def _path_edges(self, n):
        return [(i, i + 1) for i in range(n - 1)]

    def test_arc_count(self):
        tour = build_euler_tour(4, self._path_edges(4))
        assert tour.num_arcs == 6
        assert tour.num_vertices == 4

    def test_successors_form_single_circuit(self):
        edges = [(0, 1), (1, 2), (1, 3), (3, 4)]
        tour = build_euler_tour(5, edges)
        start = 0
        visited = [start]
        arc = int(tour.successor[start])
        while arc != start:
            visited.append(arc)
            arc = int(tour.successor[arc])
        assert len(visited) == tour.num_arcs

    def test_rooted_parent_structure(self):
        edges = [(0, 1), (1, 2), (1, 3), (3, 4)]
        tour = build_euler_tour(5, edges)
        rooted = tour.rooted_at(0)
        assert rooted.parent[0] == -1
        assert rooted.parent[1] == 0
        assert rooted.parent[2] == 1
        assert rooted.parent[3] == 1
        assert rooted.parent[4] == 3

    def test_vertex_distances(self):
        edges = [(0, 1), (1, 2), (1, 3), (3, 4)]
        tour = build_euler_tour(5, edges)
        rooted = tour.rooted_at(0)
        assert list(rooted.vertex_distance) == [0, 1, 2, 2, 3]

    def test_rooting_at_other_vertex(self):
        edges = [(0, 1), (1, 2)]
        tour = build_euler_tour(3, edges)
        rooted = tour.rooted_at(2)
        assert list(rooted.vertex_distance) == [2, 1, 0]

    def test_star_tree(self):
        edges = [(0, i) for i in range(1, 6)]
        tour = build_euler_tour(6, edges)
        rooted = tour.rooted_at(0)
        assert all(rooted.vertex_distance[i] == 1 for i in range(1, 6))

    def test_listrank_distances_match_bfs(self):
        rng = np.random.default_rng(0)
        # Random tree built by attaching each vertex to a random earlier one.
        n = 40
        edges = [(int(rng.integers(0, i)), i) for i in range(1, n)]
        tour = build_euler_tour(n, edges)
        rooted = tour.rooted_at(0)
        via_listrank = vertex_distances_via_listrank(n, edges, 0)
        assert np.array_equal(via_listrank, rooted.vertex_distance)
