"""Tests for the condensed tree and excess-of-mass cluster extraction."""

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.datasets import gaussian_blobs
from repro.dendrogram import (
    condense_dendrogram,
    dendrogram_topdown,
    extract_eom_clusters,
    hdbscan_flat_labels,
)
from repro.hdbscan import hdbscan


def _blob_result(num_clusters, n=240, std=0.01, seed=0, min_pts=5):
    points, truth = gaussian_blobs(
        n, 2, num_clusters=num_clusters, cluster_std=std, seed=seed, return_labels=True
    )
    return hdbscan(points, min_pts=min_pts), truth


class TestCondense:
    def test_root_cluster_always_present(self):
        result, _ = _blob_result(2)
        condensed = condense_dendrogram(result.dendrogram, min_cluster_size=5)
        assert 0 in condensed.birth_lambda
        assert condensed.num_points == result.num_points

    def test_every_point_recorded_exactly_once(self):
        result, _ = _blob_result(3, seed=1)
        condensed = condense_dendrogram(result.dendrogram, min_cluster_size=5)
        point_records = [e.child for e in condensed.edges if not e.child_is_cluster]
        assert sorted(point_records) == list(range(result.num_points))

    def test_cluster_children_sizes_at_least_min_cluster_size(self):
        result, _ = _blob_result(3, seed=2)
        condensed = condense_dendrogram(result.dendrogram, min_cluster_size=10)
        for edge in condensed.edges:
            if edge.child_is_cluster:
                assert edge.child_size >= 10

    def test_larger_min_cluster_size_gives_fewer_clusters(self):
        result, _ = _blob_result(4, n=320, seed=3)
        small = condense_dendrogram(result.dendrogram, min_cluster_size=5)
        large = condense_dendrogram(result.dendrogram, min_cluster_size=40)
        assert large.num_clusters <= small.num_clusters

    def test_parent_ids_smaller_than_children(self):
        result, _ = _blob_result(3, seed=4)
        condensed = condense_dendrogram(result.dendrogram, min_cluster_size=5)
        for child, parent in condensed.parent_of_cluster.items():
            assert parent < child

    def test_stability_nonnegative(self):
        result, _ = _blob_result(2, seed=5)
        condensed = condense_dendrogram(result.dendrogram, min_cluster_size=5)
        for cluster in condensed.cluster_ids():
            assert condensed.stability(cluster) >= -1e-12

    def test_invalid_min_cluster_size(self):
        result, _ = _blob_result(2, seed=6)
        with pytest.raises(InvalidParameterError):
            condense_dendrogram(result.dendrogram, min_cluster_size=0)

    def test_single_point_dendrogram(self):
        from repro.dendrogram import Dendrogram

        condensed = condense_dendrogram(Dendrogram(1), min_cluster_size=2)
        assert condensed.num_points == 1


class TestEOMExtraction:
    @pytest.mark.parametrize("num_clusters", [2, 3, 4])
    def test_recovers_well_separated_blobs(self, num_clusters):
        result, truth = _blob_result(num_clusters, n=80 * num_clusters, seed=num_clusters)
        labels = result.eom_labels(min_cluster_size=10)
        found = set(labels[labels >= 0].tolist())
        assert len(found) == num_clusters
        # Points of one true blob never split across two found clusters.
        for true_label in range(num_clusters):
            predicted = set(labels[truth == true_label].tolist()) - {-1}
            assert len(predicted) <= 1

    def test_noise_points_get_minus_one(self):
        rng = np.random.default_rng(9)
        blob_a = rng.normal(0.0, 0.01, size=(80, 2))
        blob_b = rng.normal(1.0, 0.01, size=(80, 2))
        outliers = rng.uniform(3.0, 6.0, size=(6, 2))
        points = np.vstack([blob_a, blob_b, outliers])
        result = hdbscan(points, min_pts=5)
        labels = result.eom_labels(min_cluster_size=10)
        assert set(labels[:160].tolist()) >= {0, 1} or len(set(labels[:160].tolist()) - {-1}) == 2
        assert np.all(labels[160:] == -1)

    def test_uniform_data_single_cluster_suppressed_by_default(self):
        # On structureless data with allow_single_cluster=False, EOM returns
        # whatever subclusters are most stable, never the root itself; with
        # allow_single_cluster=True and no competing structure, everything may
        # collapse to one cluster or noise.
        points = np.random.default_rng(10).random((200, 2))
        result = hdbscan(points, min_pts=5)
        labels = result.eom_labels(min_cluster_size=20)
        assert labels.shape == (200,)

    def test_extract_returns_stabilities_for_selected(self):
        result, _ = _blob_result(3, n=240, seed=11)
        condensed = condense_dendrogram(result.dendrogram, min_cluster_size=10)
        labels, stabilities = extract_eom_clusters(condensed)
        assert len(stabilities) == len(set(labels[labels >= 0].tolist()))
        assert all(value >= 0 for value in stabilities.values())

    def test_flat_labels_wrapper_matches_manual_pipeline(self):
        result, _ = _blob_result(2, seed=12)
        manual_condensed = condense_dendrogram(result.dendrogram, min_cluster_size=8)
        manual_labels, _ = extract_eom_clusters(manual_condensed)
        wrapper_labels = hdbscan_flat_labels(result.dendrogram, min_cluster_size=8)
        assert np.array_equal(manual_labels, wrapper_labels)

    def test_eom_requires_dendrogram(self):
        from repro.core.errors import NotComputedError

        points = np.random.default_rng(13).random((60, 2))
        result = hdbscan(points, min_pts=5, compute_dendrogram=False)
        with pytest.raises(NotComputedError):
            result.eom_labels()

    def test_labels_cover_only_valid_range(self):
        result, _ = _blob_result(3, seed=14)
        labels = result.eom_labels(min_cluster_size=10)
        assert labels.min() >= -1
        positive = labels[labels >= 0]
        if positive.size:
            assert set(positive.tolist()) == set(range(positive.max() + 1))
