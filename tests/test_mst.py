"""Tests for the MST substrate: edges, Kruskal, Borůvka, Prim, validation."""

import numpy as np
import pytest

from repro.mst import (
    Edge,
    EdgeList,
    boruvka,
    edges_from_arrays,
    is_spanning_tree,
    kruskal,
    kruskal_batch,
    prim,
    prim_order,
    total_weight,
)
from repro.parallel import UnionFind


def random_graph_edges(num_vertices, num_edges, seed):
    """A connected random graph: a spanning path plus random extra edges."""
    rng = np.random.default_rng(seed)
    edges = []
    for index in range(num_vertices - 1):
        edges.append((index, index + 1, float(rng.random())))
    for _ in range(num_edges):
        u, v = rng.integers(0, num_vertices, size=2)
        if u != v:
            edges.append((int(u), int(v), float(rng.random())))
    return edges


class TestEdgeList:
    def test_append_and_len(self):
        edges = EdgeList()
        edges.append(0, 1, 2.0)
        edges.append(1, 2, 1.0)
        assert len(edges) == 2

    def test_iteration_yields_edge_tuples(self):
        edges = EdgeList([(0, 1, 2.0)])
        edge = next(iter(edges))
        assert isinstance(edge, Edge)
        assert edge == (0, 1, 2.0)

    def test_indexing(self):
        edges = EdgeList([(0, 1, 2.0), (2, 3, 4.0)])
        assert edges[1] == (2, 3, 4.0)

    def test_endpoints_and_weights_arrays(self):
        edges = EdgeList([(0, 1, 2.0), (2, 3, 4.0)])
        assert edges.endpoints.shape == (2, 2)
        assert np.array_equal(edges.weights, [2.0, 4.0])

    def test_empty_endpoints_shape(self):
        edges = EdgeList()
        assert edges.endpoints.shape == (0, 2)
        assert edges.weights.shape == (0,)

    def test_sorted_by_weight(self):
        edges = EdgeList([(0, 1, 3.0), (1, 2, 1.0), (2, 3, 2.0)])
        weights = [edge.weight for edge in edges.sorted_by_weight()]
        assert weights == [1.0, 2.0, 3.0]

    def test_edges_from_arrays_roundtrip(self):
        endpoints = np.array([[0, 1], [1, 2]])
        weights = np.array([0.5, 0.7])
        edges = edges_from_arrays(endpoints, weights)
        back_endpoints, back_weights = edges.to_arrays()
        assert np.array_equal(back_endpoints, endpoints)
        assert np.array_equal(back_weights, weights)

    def test_edges_from_arrays_length_mismatch(self):
        with pytest.raises(ValueError):
            edges_from_arrays(np.zeros((2, 2)), np.zeros(3))

    def test_total_weight(self):
        edges = EdgeList([(0, 1, 1.5), (1, 2, 2.5)])
        assert total_weight(edges) == pytest.approx(4.0)

    def test_extend_arrays(self):
        edges = EdgeList([(0, 1, 2.0)])
        edges.extend_arrays(
            np.array([1, 2]), np.array([2, 3]), np.array([0.5, 1.5])
        )
        assert len(edges) == 3
        assert edges[2] == (2, 3, 1.5)
        u, v, w = edges.as_arrays()
        assert np.array_equal(u, [0, 1, 2])
        assert np.array_equal(v, [1, 2, 3])
        assert np.array_equal(w, [2.0, 0.5, 1.5])

    def test_extend_arrays_mismatched_lengths(self):
        with pytest.raises(ValueError):
            EdgeList().extend_arrays(np.zeros(2), np.zeros(2), np.zeros(3))

    def test_growth_preserves_contents(self):
        edges = EdgeList()
        for i in range(1000):  # force several buffer reallocations
            edges.append(i, i + 1, float(i))
        u, v, w = edges.as_arrays()
        assert np.array_equal(u, np.arange(1000))
        assert np.array_equal(w, np.arange(1000.0))

    def test_extend_from_edgelist(self):
        first = EdgeList([(0, 1, 1.0), (1, 2, 2.0)])
        second = EdgeList([(2, 3, 3.0)])
        second.extend(first)
        assert len(second) == 3
        assert second[1] == (0, 1, 1.0)

    def test_construct_from_ndarray_rows(self):
        edges = EdgeList(np.array([[0, 1, 0.5], [1, 2, 0.3]]))
        assert len(edges) == 2
        assert edges[1] == (1, 2, 0.3)

    def test_array_views_are_read_only(self):
        edges = EdgeList([(0, 1, 1.0)])
        u, v, w = edges.as_arrays()
        for view in (u, v, w, edges.weights):
            with pytest.raises(ValueError):
                view[0] = 0


class TestKruskal:
    def test_known_tiny_graph(self):
        edges = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]
        tree = kruskal(edges, 3)
        assert total_weight(tree) == pytest.approx(3.0)
        assert len(tree) == 2

    def test_spanning_tree_of_random_graph(self):
        edges = random_graph_edges(50, 200, seed=0)
        tree = kruskal(edges, 50)
        assert is_spanning_tree(tree, 50)

    def test_agrees_with_boruvka_and_prim(self):
        edges = random_graph_edges(60, 300, seed=1)
        weight_kruskal = total_weight(kruskal(edges, 60))
        weight_boruvka = total_weight(boruvka(edges, 60))
        weight_prim = total_weight(prim(edges, 60))
        assert weight_kruskal == pytest.approx(weight_boruvka)
        assert weight_kruskal == pytest.approx(weight_prim)

    def test_disconnected_graph_gives_forest(self):
        edges = [(0, 1, 1.0), (2, 3, 1.0)]
        forest = kruskal(edges, 4)
        assert len(forest) == 2
        assert not is_spanning_tree(forest, 4)

    def test_batch_shares_union_find(self):
        union_find = UnionFind(4)
        output = EdgeList()
        accepted_1 = kruskal_batch([(0, 1, 1.0)], output, union_find)
        accepted_2 = kruskal_batch([(0, 1, 2.0), (1, 2, 3.0)], output, union_find)
        assert accepted_1 == 1
        assert accepted_2 == 1  # (0, 1) is rejected the second time
        assert len(output) == 2

    def test_batch_empty(self):
        union_find = UnionFind(3)
        output = EdgeList()
        assert kruskal_batch([], output, union_find) == 0

    def test_batched_equals_single_shot(self):
        edges = sorted(random_graph_edges(40, 150, seed=2), key=lambda e: e[2])
        single = total_weight(kruskal(edges, 40))
        union_find = UnionFind(40)
        output = EdgeList()
        third = len(edges) // 3
        for batch in (edges[:third], edges[third : 2 * third], edges[2 * third :]):
            kruskal_batch(batch, output, union_find)
        assert total_weight(output) == pytest.approx(single)

    def test_accepts_array_batches(self):
        edges = random_graph_edges(30, 100, seed=5)
        u = np.array([e[0] for e in edges], dtype=np.int64)
        v = np.array([e[1] for e in edges], dtype=np.int64)
        w = np.array([e[2] for e in edges])
        from_arrays = kruskal((u, v, w), 30)
        from_tuples = kruskal(edges, 30)
        assert np.array_equal(from_arrays.endpoints, from_tuples.endpoints)
        assert np.array_equal(from_arrays.weights, from_tuples.weights)

    @pytest.mark.parametrize("seed", range(5))
    def test_property_batched_prefix_equals_single_shot(self, seed):
        """Any weight-ordered batch split accepts exactly the same edges.

        This is the contract GFK/MemoGFK rely on: cutting a sorted edge
        sequence into arbitrary batches processed against one shared
        union-find yields the same forest (same edges, same order) as one
        single-shot Kruskal run.
        """
        rng = np.random.default_rng(seed)
        num_vertices = 40 + 10 * seed
        edges = sorted(
            random_graph_edges(num_vertices, 150, seed=seed), key=lambda e: e[2]
        )
        reference = kruskal(edges, num_vertices)

        cuts = np.sort(rng.integers(0, len(edges), size=rng.integers(1, 6)))
        union_find = UnionFind(num_vertices)
        output = EdgeList()
        previous = 0
        for cut in list(cuts) + [len(edges)]:
            kruskal_batch(edges[previous:cut], output, union_find)
            previous = cut
        assert np.array_equal(output.endpoints, reference.endpoints)
        assert np.array_equal(output.weights, reference.weights)

    def test_equal_weight_ties_keep_input_order(self):
        # Stable sorting: among equal weights the earlier edge wins.
        edges = [(0, 1, 1.0), (2, 3, 1.0), (1, 2, 1.0), (0, 3, 1.0)]
        tree = kruskal(edges, 4)
        assert [tuple(e) for e in tree.endpoints] == [(0, 1), (2, 3), (1, 2)]


class TestBoruvka:
    def test_tiny_graph(self):
        edges = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]
        tree = boruvka(edges, 3)
        assert total_weight(tree) == pytest.approx(3.0)

    def test_spanning(self):
        edges = random_graph_edges(45, 200, seed=3)
        assert is_spanning_tree(boruvka(edges, 45), 45)

    def test_empty_graph(self):
        assert len(boruvka([], 5)) == 0

    def test_disconnected_graph(self):
        edges = [(0, 1, 1.0), (2, 3, 5.0)]
        forest = boruvka(edges, 4)
        assert len(forest) == 2

    def test_handles_duplicate_weights(self):
        edges = [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0), (0, 2, 1.0)]
        tree = boruvka(edges, 4)
        assert is_spanning_tree(tree, 4)
        assert total_weight(tree) == pytest.approx(3.0)


class TestPrim:
    def test_tiny_graph(self):
        edges = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]
        tree = prim(edges, 3)
        assert total_weight(tree) == pytest.approx(3.0)

    def test_spanning_forest_for_disconnected_input(self):
        edges = [(0, 1, 1.0), (2, 3, 2.0)]
        forest = prim(edges, 4)
        assert len(forest) == 2

    def test_prim_order_starts_at_start(self):
        edges = [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 0.5)]
        order, reach = prim_order(edges, 4, start=2)
        assert order[0] == 2
        assert reach[0] == float("inf")

    def test_prim_order_visits_all_vertices(self):
        edges = random_graph_edges(30, 0, seed=4)  # a path: already a tree
        order, reach = prim_order(edges, 30, start=0)
        assert sorted(order) == list(range(30))
        assert len(reach) == 30

    def test_prim_order_reachability_values_are_tree_edge_weights(self):
        # On a path graph starting from one end, each point's reachability is
        # exactly the weight of the edge leading to it.
        edges = [(i, i + 1, float(i + 1)) for i in range(5)]
        order, reach = prim_order(edges, 6, start=0)
        assert order == [0, 1, 2, 3, 4, 5]
        assert reach[1:] == [1.0, 2.0, 3.0, 4.0, 5.0]


class TestValidation:
    def test_valid_tree(self):
        assert is_spanning_tree([(0, 1, 1.0), (1, 2, 1.0)], 3)

    def test_cycle_is_not_a_tree(self):
        assert not is_spanning_tree([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)], 3)

    def test_too_few_edges(self):
        assert not is_spanning_tree([(0, 1, 1.0)], 3)

    def test_disconnected(self):
        assert not is_spanning_tree([(0, 1, 1.0), (2, 3, 1.0)], 4)
