"""Tests for the HDBSCAN* pipeline: core distances, MST variants, public API."""

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError, NotComputedError
from repro.emst import emst_bruteforce
from repro.hdbscan import (
    HDBSCAN_METHODS,
    core_distances,
    hdbscan,
    hdbscan_mst_bruteforce,
    hdbscan_mst_gantao,
    hdbscan_mst_memogfk,
    mutual_reachability,
    mutual_reachability_matrix,
    optics_approx_mst,
)

EXACT_METHODS = [hdbscan_mst_gantao, hdbscan_mst_memogfk]


class TestCoreDistances:
    def test_minpts_one_is_zero(self, small_points_2d):
        assert np.allclose(core_distances(small_points_2d, 1), 0.0)

    def test_minpts_two_is_nearest_neighbor_distance(self, small_points_2d):
        from repro.core.distance import pairwise_distances

        core = core_distances(small_points_2d, 2)
        matrix = pairwise_distances(small_points_2d)
        np.fill_diagonal(matrix, np.inf)
        assert np.allclose(core, matrix.min(axis=1), atol=1e-6)

    def test_monotone_in_minpts(self, small_points_3d):
        previous = core_distances(small_points_3d, 2)
        for min_pts in (5, 10, 20):
            current = core_distances(small_points_3d, min_pts)
            assert np.all(current >= previous - 1e-9)
            previous = current

    def test_kdtree_method_matches_bruteforce(self, small_points_3d):
        brute = core_distances(small_points_3d, 6, method="bruteforce")
        kdtree = core_distances(small_points_3d, 6, method="kdtree")
        assert np.allclose(brute, kdtree, atol=1e-6)

    def test_invalid_minpts(self, small_points_2d):
        with pytest.raises(InvalidParameterError):
            core_distances(small_points_2d, 0)
        with pytest.raises(InvalidParameterError):
            core_distances(small_points_2d, len(small_points_2d) + 1)

    def test_invalid_method(self, small_points_2d):
        with pytest.raises(InvalidParameterError):
            core_distances(small_points_2d, 3, method="bogus")

    def test_dense_point_has_smaller_core_distance(self):
        # One tight cluster plus one isolated point: the isolated point's core
        # distance must be the largest.
        rng = np.random.default_rng(0)
        cluster = rng.normal(0.0, 0.01, size=(30, 2))
        outlier = np.array([[10.0, 10.0]])
        core = core_distances(np.vstack([cluster, outlier]), 5)
        assert np.argmax(core) == 30


class TestMutualReachability:
    def test_pointwise_definition(self):
        p, q = np.array([0.0, 0.0]), np.array([1.0, 0.0])
        assert mutual_reachability(p, q, 0.5, 0.3) == pytest.approx(1.0)
        assert mutual_reachability(p, q, 2.0, 0.3) == pytest.approx(2.0)

    def test_matrix_symmetric_with_zero_diagonal(self, small_points_2d):
        core = core_distances(small_points_2d, 5)
        matrix = mutual_reachability_matrix(small_points_2d, core)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_matrix_lower_bounded_by_core_distances(self, small_points_2d):
        core = core_distances(small_points_2d, 5)
        matrix = mutual_reachability_matrix(small_points_2d, core)
        off_diagonal = matrix + np.diag(np.full(len(core), np.inf))
        assert np.all(off_diagonal >= core[:, None] - 1e-9)

    def test_matrix_requires_matching_core_length(self, small_points_2d):
        with pytest.raises(ValueError):
            mutual_reachability_matrix(small_points_2d, np.zeros(3))


class TestMSTVariants:
    @pytest.mark.parametrize("algorithm", EXACT_METHODS, ids=lambda f: f.__name__)
    @pytest.mark.parametrize("min_pts", [2, 5, 15])
    def test_weight_matches_bruteforce(self, algorithm, min_pts):
        points = np.random.default_rng(min_pts).random((90, 3))
        expected = hdbscan_mst_bruteforce(points, min_pts).total_weight
        result = algorithm(points, min_pts)
        assert result.total_weight == pytest.approx(expected, rel=1e-9)
        assert result.is_spanning_tree()

    @pytest.mark.parametrize("algorithm", EXACT_METHODS, ids=lambda f: f.__name__)
    def test_skewed_data(self, algorithm, varden_points):
        subset = varden_points[:150]
        expected = hdbscan_mst_bruteforce(subset, 10).total_weight
        assert algorithm(subset, 10).total_weight == pytest.approx(expected, rel=1e-9)

    def test_minpts_one_equals_emst(self, small_points_2d):
        emst_weight = emst_bruteforce(small_points_2d).total_weight
        hdbscan_weight = hdbscan_mst_memogfk(small_points_2d, 1).total_weight
        assert hdbscan_weight == pytest.approx(emst_weight, rel=1e-9)

    def test_mst_weight_monotone_in_minpts(self, small_points_3d):
        weights = [
            hdbscan_mst_memogfk(small_points_3d, min_pts).total_weight
            for min_pts in (1, 5, 10, 20)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(weights, weights[1:]))

    def test_memogfk_fewer_bccp_calls_than_gantao(self, varden_points):
        subset = varden_points[:200]
        gantao = hdbscan_mst_gantao(subset, 20)
        memogfk = hdbscan_mst_memogfk(subset, 20)
        assert memogfk.stats["bccp_calls"] <= gantao.stats["bccp_calls"]

    def test_precomputed_core_distances_accepted(self, small_points_2d):
        core = core_distances(small_points_2d, 5)
        result = hdbscan_mst_memogfk(small_points_2d, 5, core_dists=core)
        expected = hdbscan_mst_bruteforce(small_points_2d, 5, core_dists=core)
        assert result.total_weight == pytest.approx(expected.total_weight)

    @pytest.mark.parametrize("algorithm", EXACT_METHODS + [hdbscan_mst_bruteforce], ids=lambda f: f.__name__)
    def test_single_point(self, algorithm):
        result = algorithm(np.array([[0.0, 0.0]]), 1)
        assert result.num_edges == 0

    def test_edge_weights_at_least_core_distances(self, small_points_3d):
        min_pts = 8
        core = core_distances(small_points_3d, min_pts)
        result = hdbscan_mst_memogfk(small_points_3d, min_pts, core_dists=core)
        for u, v, w in result.edges:
            assert w >= max(core[u], core[v]) - 1e-9


class TestApproximateOptics:
    def test_weight_close_to_exact(self, small_points_3d):
        exact = hdbscan_mst_bruteforce(small_points_3d, 10).total_weight
        approx = optics_approx_mst(small_points_3d, 10, rho=0.125).total_weight
        # The approximate MST uses weights scaled by at most 1/(1+rho), so its
        # total weight lies within [exact / (1 + rho), ~exact].
        assert approx >= exact / 1.125 - 1e-9
        assert approx <= exact * 1.01 + 1e-9

    def test_spanning(self, small_points_2d):
        result = optics_approx_mst(small_points_2d, 10, rho=0.125)
        assert result.is_spanning_tree()

    def test_smaller_rho_means_more_pairs(self, small_points_2d):
        loose = optics_approx_mst(small_points_2d, 10, rho=0.5)
        tight = optics_approx_mst(small_points_2d, 10, rho=0.125)
        assert tight.stats["wspd_pairs"] >= loose.stats["wspd_pairs"]

    def test_invalid_rho(self, small_points_2d):
        with pytest.raises(InvalidParameterError):
            optics_approx_mst(small_points_2d, 10, rho=0.0)

    def test_reports_separation_constant(self, small_points_2d):
        result = optics_approx_mst(small_points_2d, 10, rho=0.125)
        assert result.stats["separation_constant"] == pytest.approx(8.0)


class TestPublicAPI:
    def test_default_pipeline(self, clustered_points):
        points, truth = clustered_points
        result = hdbscan(points, min_pts=5)
        assert result.mst.is_spanning_tree()
        assert result.dendrogram is not None
        labels = result.dbscan_labels(0.2)
        # The two blobs are far apart: the cut at 0.2 recovers them exactly.
        assert len(set(labels[labels >= 0].tolist())) == 2
        first_blob = set(labels[truth == 0].tolist())
        second_blob = set(labels[truth == 1].tolist())
        assert first_blob.isdisjoint(second_blob)

    @pytest.mark.parametrize("method", sorted(HDBSCAN_METHODS))
    def test_all_methods_run(self, method):
        points = np.random.default_rng(4).random((80, 2))
        result = hdbscan(points, min_pts=5, method=method)
        assert result.mst.num_edges == 79

    def test_unknown_method(self, small_points_2d):
        with pytest.raises(InvalidParameterError):
            hdbscan(small_points_2d, method="nope")

    def test_invalid_minpts(self, small_points_2d):
        with pytest.raises(InvalidParameterError):
            hdbscan(small_points_2d, min_pts=0)

    def test_reachability_plot_matches_prim(self, small_points_2d):
        from repro.dendrogram import reachability_plot

        result = hdbscan(small_points_2d, min_pts=5)
        order, reach = result.reachability_plot()
        order_ref, reach_ref = reachability_plot(
            list(result.mst.edges), len(small_points_2d), start=0
        )
        # The HDBSCAN* MST has tied edge weights (many equal core distances),
        # so the ordered dendrogram and the heap-based Prim may break ties
        # differently; the multiset of reachability values must still agree,
        # both orders start at the same vertex and visit every point once.
        assert order[0] == order_ref[0] == 0
        assert sorted(order.tolist()) == sorted(order_ref.tolist())
        assert np.allclose(np.sort(reach[1:]), np.sort(reach_ref[1:]))

    def test_skip_dendrogram(self, small_points_2d):
        result = hdbscan(small_points_2d, min_pts=5, compute_dendrogram=False)
        assert result.dendrogram is None
        with pytest.raises(NotComputedError):
            result.reachability_plot()

    def test_noise_points_labelled_minus_one(self):
        rng = np.random.default_rng(8)
        cluster = rng.normal(0.0, 0.02, size=(60, 2))
        outliers = np.array([[5.0, 5.0], [-5.0, 5.0], [5.0, -5.0]])
        points = np.vstack([cluster, outliers])
        result = hdbscan(points, min_pts=5)
        labels = result.dbscan_labels(0.1)
        assert np.all(labels[60:] == -1)
        assert np.all(labels[:60] >= 0)

    def test_min_cluster_size_filters_small_components(self, clustered_points):
        points, _ = clustered_points
        result = hdbscan(points, min_pts=5)
        strict = result.dbscan_labels(0.2, min_cluster_size=200)
        assert np.all(strict == -1)

    def test_epsilon_zero_everything_noise(self, small_points_2d):
        result = hdbscan(small_points_2d, min_pts=5)
        labels = result.dbscan_labels(0.0)
        assert np.all(labels == -1)

    def test_huge_epsilon_single_cluster(self, small_points_2d):
        result = hdbscan(small_points_2d, min_pts=5)
        labels = result.dbscan_labels(1e6)
        assert set(labels.tolist()) == {0}

    def test_stats_include_phases(self, small_points_2d):
        result = hdbscan(small_points_2d, min_pts=5)
        assert "time_core-dist" in result.stats
        assert "time_mst" in result.stats
        assert "time_dendrogram" in result.stats
