"""The cross-method conformance matrix.

One parametrized grid — method × metric × num_threads × dtype — asserting
that every *exact* EMST method returns the identical spanning tree (total
weight and edge set) on a generic-position dataset, that the exact HDBSCAN*
methods agree on the mutual-reachability MST weight, and that the
*approximate* methods honour their ``(1 + ε)`` weight contract instead.
This replaces the per-PR ad-hoc cross-check loops; the helpers live in
``tests/conformance.py`` and new methods/metrics join the matrix by being
registered (see that module's docstring).
"""

from __future__ import annotations

import numpy as np
import pytest

from conformance import (
    APPROX_EMST_METHODS,
    CONFORMANCE_DTYPES,
    CONFORMANCE_EPSILONS,
    CONFORMANCE_METRICS,
    CONFORMANCE_THREAD_COUNTS,
    EXACT_EMST_METHODS,
    EXACT_HDBSCAN_METHODS,
    assert_same_tree,
    assert_weight_bound,
    canonical_edges,
    skip_unless_supported,
)
from repro.approx import approx_emst, approx_hdbscan_mst
from repro.emst.api import emst
from repro.hdbscan.api import hdbscan

#: Conformance dataset shape: 2D so the Delaunay method participates, large
#: enough that the engines take their batched paths, small enough that the
#: O(n^2) bruteforce reference stays cheap.
N_POINTS = 150
DIMENSIONS = 2
MIN_PTS = 5


@pytest.fixture(scope="module")
def dataset():
    """Generic-position points per input dtype.

    The float32 input is a *different* dataset than the float64 one (its
    values round); each dtype cell is compared against the reference
    computed from the same input, which checks that coercion at the boundary
    is value-exact and shared by every method.
    """
    base = np.random.default_rng(421).random((N_POINTS, DIMENSIONS))
    return {
        "float64": base,
        "float32": base.astype(np.float32),
    }


@pytest.fixture(scope="module")
def emst_references(dataset):
    """Bruteforce EMST per (metric, dtype) — the matrix's ground truth."""
    cache = {}
    for metric in CONFORMANCE_METRICS:
        for dtype in CONFORMANCE_DTYPES:
            cache[(metric, dtype)] = emst(
                dataset[dtype], method="bruteforce", metric=metric
            )
    return cache


@pytest.fixture(scope="module")
def hdbscan_references(dataset):
    """Bruteforce mutual-reachability MST weight per (metric, dtype)."""
    cache = {}
    for metric in CONFORMANCE_METRICS:
        for dtype in CONFORMANCE_DTYPES:
            result = hdbscan(
                dataset[dtype],
                min_pts=MIN_PTS,
                method="bruteforce",
                metric=metric,
                compute_dendrogram=False,
            )
            cache[(metric, dtype)] = result.mst.total_weight
    return cache


class TestExactEMSTConformance:
    @pytest.mark.parametrize("method", EXACT_EMST_METHODS)
    @pytest.mark.parametrize("metric", CONFORMANCE_METRICS)
    @pytest.mark.parametrize("num_threads", CONFORMANCE_THREAD_COUNTS)
    @pytest.mark.parametrize("dtype", CONFORMANCE_DTYPES)
    def test_same_tree(
        self, method, metric, num_threads, dtype, dataset, emst_references
    ):
        skip_unless_supported(method, metric, DIMENSIONS)
        result = emst(
            dataset[dtype], method=method, metric=metric, num_threads=num_threads
        )
        assert_same_tree(result, emst_references[(metric, dtype)])

    def test_canonical_edges_ignore_order_and_direction(self, dataset):
        result = emst(dataset["float64"], method="naive")
        edges = canonical_edges(result)
        assert np.all(edges[:, 0] < edges[:, 1])
        assert edges.shape == (N_POINTS - 1, 2)


class TestApproxEMSTConformance:
    @pytest.mark.parametrize("method", APPROX_EMST_METHODS)
    @pytest.mark.parametrize("metric", CONFORMANCE_METRICS)
    @pytest.mark.parametrize("num_threads", CONFORMANCE_THREAD_COUNTS)
    @pytest.mark.parametrize("epsilon", CONFORMANCE_EPSILONS)
    def test_weight_bound(
        self, method, metric, num_threads, epsilon, dataset, emst_references
    ):
        result = emst(
            dataset["float64"],
            method=method,
            metric=metric,
            num_threads=num_threads,
            epsilon=epsilon,
        )
        assert_weight_bound(
            result,
            emst_references[(metric, "float64")].total_weight,
            epsilon,
            num_points=N_POINTS,
        )

    @pytest.mark.parametrize("representative", ("sample", "bccp"))
    @pytest.mark.parametrize("epsilon", CONFORMANCE_EPSILONS)
    def test_representative_strategies(
        self, representative, epsilon, dataset, emst_references
    ):
        result = approx_emst(
            dataset["float64"], epsilon, representative=representative
        )
        assert_weight_bound(
            result,
            emst_references[("euclidean", "float64")].total_weight,
            epsilon,
            num_points=N_POINTS,
        )

    def test_epsilon_zero_is_exact(self, dataset, emst_references):
        result = emst(dataset["float64"], method="wspd-approx", epsilon=0.0)
        assert_same_tree(result, emst_references[("euclidean", "float64")])


class TestExactHDBSCANConformance:
    # Mutual reachability distances tie heavily (many pairs share a core
    # distance), so exact methods must agree on total weight but may pick
    # different (equally minimal) edge sets.
    @pytest.mark.parametrize("method", EXACT_HDBSCAN_METHODS)
    @pytest.mark.parametrize("metric", CONFORMANCE_METRICS)
    @pytest.mark.parametrize("num_threads", CONFORMANCE_THREAD_COUNTS)
    @pytest.mark.parametrize("dtype", CONFORMANCE_DTYPES)
    def test_same_weight(
        self, method, metric, num_threads, dtype, dataset, hdbscan_references
    ):
        kwargs = {} if method == "bruteforce" else {"num_threads": num_threads}
        result = hdbscan(
            dataset[dtype],
            min_pts=MIN_PTS,
            method=method,
            metric=metric,
            compute_dendrogram=False,
            **kwargs,
        )
        assert result.mst.is_spanning_tree()
        assert result.mst.total_weight == pytest.approx(
            hdbscan_references[(metric, dtype)], rel=1e-9
        )


class TestApproxHDBSCANConformance:
    @pytest.mark.parametrize("metric", CONFORMANCE_METRICS)
    @pytest.mark.parametrize("epsilon", CONFORMANCE_EPSILONS)
    def test_weight_bound(self, metric, epsilon, dataset, hdbscan_references):
        result = approx_hdbscan_mst(
            dataset["float64"], MIN_PTS, epsilon=epsilon, metric=metric
        )
        assert_weight_bound(
            result,
            hdbscan_references[(metric, "float64")],
            epsilon,
            num_points=N_POINTS,
        )
