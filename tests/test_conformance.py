"""The cross-method conformance matrix.

One parametrized grid — method × metric × num_threads × dtype — asserting
that every *exact* EMST method returns the identical spanning tree (total
weight and edge set) on a generic-position dataset, that the exact HDBSCAN*
methods agree on the mutual-reachability MST weight, and that the
*approximate* methods honour their ``(1 + ε)`` weight contract instead.
This replaces the per-PR ad-hoc cross-check loops; the helpers live in
``tests/conformance.py`` and new methods/metrics join the matrix by being
registered (see that module's docstring).
"""

from __future__ import annotations

import numpy as np
import pytest

from conformance import (
    APPROX_EMST_METHODS,
    CONFORMANCE_BACKEND_THREAD_COUNTS,
    CONFORMANCE_BACKENDS,
    CONFORMANCE_DTYPES,
    CONFORMANCE_EPSILONS,
    CONFORMANCE_MEMORY_BUDGETS,
    CONFORMANCE_METRICS,
    CONFORMANCE_THREAD_COUNTS,
    EXACT_EMST_METHODS,
    EXACT_HDBSCAN_METHODS,
    assert_bounded_agreement,
    assert_byte_identical,
    assert_same_tree,
    assert_weight_bound,
    backend_is_exact,
    canonical_edges,
    skip_unless_backend_available,
    skip_unless_supported,
)
from repro.approx import approx_emst, approx_hdbscan_mst
from repro.emst.api import emst
from repro.hdbscan.api import hdbscan
from repro.hdbscan.core_distance import core_distances

#: Conformance dataset shape: 2D so the Delaunay method participates, large
#: enough that the engines take their batched paths, small enough that the
#: O(n^2) bruteforce reference stays cheap.
N_POINTS = 150
DIMENSIONS = 2
MIN_PTS = 5


@pytest.fixture(scope="module")
def dataset():
    """Generic-position points per input dtype.

    The float32 input is a *different* dataset than the float64 one (its
    values round); each dtype cell is compared against the reference
    computed from the same input, which checks that coercion at the boundary
    is value-exact and shared by every method.
    """
    base = np.random.default_rng(421).random((N_POINTS, DIMENSIONS))
    return {
        "float64": base,
        "float32": base.astype(np.float32),
    }


@pytest.fixture(scope="module")
def emst_references(dataset):
    """Bruteforce EMST per (metric, dtype) — the matrix's ground truth."""
    cache = {}
    for metric in CONFORMANCE_METRICS:
        for dtype in CONFORMANCE_DTYPES:
            cache[(metric, dtype)] = emst(
                dataset[dtype], method="bruteforce", metric=metric
            )
    return cache


@pytest.fixture(scope="module")
def hdbscan_references(dataset):
    """Bruteforce mutual-reachability MST weight per (metric, dtype)."""
    cache = {}
    for metric in CONFORMANCE_METRICS:
        for dtype in CONFORMANCE_DTYPES:
            result = hdbscan(
                dataset[dtype],
                min_pts=MIN_PTS,
                method="bruteforce",
                metric=metric,
                compute_dendrogram=False,
            )
            cache[(metric, dtype)] = result.mst.total_weight
    return cache


class TestExactEMSTConformance:
    @pytest.mark.parametrize("method", EXACT_EMST_METHODS)
    @pytest.mark.parametrize("metric", CONFORMANCE_METRICS)
    @pytest.mark.parametrize("num_threads", CONFORMANCE_THREAD_COUNTS)
    @pytest.mark.parametrize("dtype", CONFORMANCE_DTYPES)
    def test_same_tree(
        self, method, metric, num_threads, dtype, dataset, emst_references
    ):
        skip_unless_supported(method, metric, DIMENSIONS)
        result = emst(
            dataset[dtype], method=method, metric=metric, num_threads=num_threads
        )
        assert_same_tree(result, emst_references[(metric, dtype)])

    def test_canonical_edges_ignore_order_and_direction(self, dataset):
        result = emst(dataset["float64"], method="naive")
        edges = canonical_edges(result)
        assert np.all(edges[:, 0] < edges[:, 1])
        assert edges.shape == (N_POINTS - 1, 2)


class TestApproxEMSTConformance:
    @pytest.mark.parametrize("method", APPROX_EMST_METHODS)
    @pytest.mark.parametrize("metric", CONFORMANCE_METRICS)
    @pytest.mark.parametrize("num_threads", CONFORMANCE_THREAD_COUNTS)
    @pytest.mark.parametrize("epsilon", CONFORMANCE_EPSILONS)
    def test_weight_bound(
        self, method, metric, num_threads, epsilon, dataset, emst_references
    ):
        result = emst(
            dataset["float64"],
            method=method,
            metric=metric,
            num_threads=num_threads,
            epsilon=epsilon,
        )
        assert_weight_bound(
            result,
            emst_references[(metric, "float64")].total_weight,
            epsilon,
            num_points=N_POINTS,
        )

    @pytest.mark.parametrize("representative", ("sample", "bccp"))
    @pytest.mark.parametrize("epsilon", CONFORMANCE_EPSILONS)
    def test_representative_strategies(
        self, representative, epsilon, dataset, emst_references
    ):
        result = approx_emst(
            dataset["float64"], epsilon, representative=representative
        )
        assert_weight_bound(
            result,
            emst_references[("euclidean", "float64")].total_weight,
            epsilon,
            num_points=N_POINTS,
        )

    def test_epsilon_zero_is_exact(self, dataset, emst_references):
        result = emst(dataset["float64"], method="wspd-approx", epsilon=0.0)
        assert_same_tree(result, emst_references[("euclidean", "float64")])


class TestExactHDBSCANConformance:
    # Mutual reachability distances tie heavily (many pairs share a core
    # distance), so exact methods must agree on total weight but may pick
    # different (equally minimal) edge sets.
    @pytest.mark.parametrize("method", EXACT_HDBSCAN_METHODS)
    @pytest.mark.parametrize("metric", CONFORMANCE_METRICS)
    @pytest.mark.parametrize("num_threads", CONFORMANCE_THREAD_COUNTS)
    @pytest.mark.parametrize("dtype", CONFORMANCE_DTYPES)
    def test_same_weight(
        self, method, metric, num_threads, dtype, dataset, hdbscan_references
    ):
        kwargs = {} if method == "bruteforce" else {"num_threads": num_threads}
        result = hdbscan(
            dataset[dtype],
            min_pts=MIN_PTS,
            method=method,
            metric=metric,
            compute_dendrogram=False,
            **kwargs,
        )
        assert result.mst.is_spanning_tree()
        assert result.mst.total_weight == pytest.approx(
            hdbscan_references[(metric, dtype)], rel=1e-9
        )


class TestBackendConformance:
    """The kernel-backend axis: backend × metric × num_threads.

    Exact (float64-scoring) backends must reproduce the default engine's
    tree **byte for byte** at every thread count; lowered (float32-scoring)
    backends are held to bounded weight/edge agreement — the same contract
    split the backend registry documents.
    """

    @pytest.fixture(scope="class")
    def emst_numpy_baseline(self, dataset):
        """Default-backend MemoGFK tree per metric (the byte-identity anchor)."""
        return {
            metric: emst(
                dataset["float64"], method="memogfk", metric=metric, backend="numpy"
            )
            for metric in CONFORMANCE_METRICS
        }

    @pytest.mark.parametrize("backend", CONFORMANCE_BACKENDS)
    @pytest.mark.parametrize("metric", CONFORMANCE_METRICS)
    @pytest.mark.parametrize("num_threads", CONFORMANCE_BACKEND_THREAD_COUNTS)
    def test_emst_backend(
        self,
        backend,
        metric,
        num_threads,
        dataset,
        emst_references,
        emst_numpy_baseline,
    ):
        skip_unless_backend_available(backend)
        result = emst(
            dataset["float64"],
            method="memogfk",
            metric=metric,
            backend=backend,
            num_threads=num_threads,
        )
        if backend_is_exact(backend):
            assert_byte_identical(result, emst_numpy_baseline[metric])
        else:
            assert_bounded_agreement(result, emst_references[(metric, "float64")])

    @pytest.mark.parametrize("backend", CONFORMANCE_BACKENDS)
    @pytest.mark.parametrize("num_threads", CONFORMANCE_BACKEND_THREAD_COUNTS)
    def test_hdbscan_backend(
        self, backend, num_threads, dataset, hdbscan_references
    ):
        skip_unless_backend_available(backend)
        result = hdbscan(
            dataset["float64"],
            min_pts=MIN_PTS,
            method="memogfk",
            backend=backend,
            num_threads=num_threads,
            compute_dendrogram=False,
        )
        assert result.mst.is_spanning_tree()
        # Mutual-reachability weights tie heavily, so even exact backends are
        # compared on total weight (like the method matrix above); the lowered
        # backend gets the same bounded tolerance as its EMST contract.
        rel = 1e-9 if backend_is_exact(backend) else 1e-5
        assert result.mst.total_weight == pytest.approx(
            hdbscan_references[("euclidean", "float64")], rel=rel
        )

    @pytest.mark.parametrize("backend", CONFORMANCE_BACKENDS)
    @pytest.mark.parametrize("knn_method", ("bruteforce", "kdtree"))
    def test_core_distances_backend(self, backend, knn_method, dataset):
        skip_unless_backend_available(backend)
        reference = core_distances(
            dataset["float64"], MIN_PTS, method=knn_method, backend="numpy"
        )
        cds = core_distances(
            dataset["float64"], MIN_PTS, method=knn_method, backend=backend
        )
        assert cds.dtype == np.float64
        if backend == "numpy":
            assert np.array_equal(cds, reference)
        elif backend_is_exact(backend):
            # The compiled kernel accumulates squared differences directly
            # instead of the BLAS expansion, so raw k-NN distances may differ
            # in the last ulp even though the selected neighbour sets (and
            # every re-evaluated MST edge weight) agree.
            np.testing.assert_allclose(cds, reference, rtol=1e-12, atol=0.0)
        else:
            np.testing.assert_allclose(cds, reference, rtol=1e-5, atol=1e-7)


class TestMemoryBudgetConformance:
    """The memory-budget axis: budget × method × num_threads.

    A bounded :class:`~repro.core.budget.MemoryBudget` may change only tile
    and chunk sizes, so every cell is held to **byte-identity** against the
    unbudgeted run of the same method — including the one-byte budget, where
    every kernel clamps at its minimum tile.
    """

    @pytest.mark.parametrize("method", EXACT_EMST_METHODS)
    @pytest.mark.parametrize("memory_budget", CONFORMANCE_MEMORY_BUDGETS)
    def test_emst_budget(self, method, memory_budget, dataset):
        skip_unless_supported(method, "euclidean", DIMENSIONS)
        reference = emst(dataset["float64"], method=method)
        result = emst(
            dataset["float64"], method=method, memory_budget=memory_budget
        )
        assert_byte_identical(result, reference)

    @pytest.mark.parametrize("memory_budget", CONFORMANCE_MEMORY_BUDGETS)
    @pytest.mark.parametrize("num_threads", CONFORMANCE_THREAD_COUNTS)
    def test_hdbscan_budget(self, memory_budget, num_threads, dataset):
        reference = hdbscan(
            dataset["float64"], min_pts=MIN_PTS, num_threads=num_threads
        )
        result = hdbscan(
            dataset["float64"],
            min_pts=MIN_PTS,
            num_threads=num_threads,
            memory_budget=memory_budget,
        )
        assert_byte_identical(result.mst, reference.mst)
        assert np.array_equal(result.core_distances, reference.core_distances)
        assert np.array_equal(result.eom_labels(), reference.eom_labels())

    @pytest.mark.parametrize("knn_method", ("bruteforce", "kdtree"))
    @pytest.mark.parametrize("memory_budget", CONFORMANCE_MEMORY_BUDGETS)
    def test_core_distances_budget(self, knn_method, memory_budget, dataset):
        reference = core_distances(dataset["float64"], MIN_PTS, method=knn_method)
        cds = core_distances(
            dataset["float64"],
            MIN_PTS,
            method=knn_method,
            memory_budget=memory_budget,
        )
        assert np.array_equal(cds, reference)


class TestApproxHDBSCANConformance:
    @pytest.mark.parametrize("metric", CONFORMANCE_METRICS)
    @pytest.mark.parametrize("epsilon", CONFORMANCE_EPSILONS)
    def test_weight_bound(self, metric, epsilon, dataset, hdbscan_references):
        result = approx_hdbscan_mst(
            dataset["float64"], MIN_PTS, epsilon=epsilon, metric=metric
        )
        assert_weight_bound(
            result,
            hdbscan_references[(metric, "float64")],
            epsilon,
            num_points=N_POINTS,
        )
