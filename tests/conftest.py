"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import gaussian_blobs, paper_example_points, seed_spreader, uniform_fill


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_points_2d():
    """120 uniform points in 2D (small enough for brute-force references)."""
    return np.random.default_rng(1).random((120, 2))


@pytest.fixture(scope="session")
def small_points_3d():
    return np.random.default_rng(2).random((150, 3))


@pytest.fixture(scope="session")
def small_points_5d():
    return np.random.default_rng(3).random((100, 5))


@pytest.fixture(scope="session")
def clustered_points():
    """Two well-separated Gaussian blobs with known membership."""
    generator = np.random.default_rng(7)
    blob_a = generator.normal(0.0, 0.05, size=(80, 2))
    blob_b = generator.normal(1.0, 0.05, size=(80, 2))
    points = np.vstack([blob_a, blob_b])
    labels = np.array([0] * 80 + [1] * 80)
    return points, labels


@pytest.fixture(scope="session")
def varden_points():
    return seed_spreader(300, 2, seed=11)


@pytest.fixture(scope="session")
def paper_example():
    """The 9-point configuration of the paper's Figure 1."""
    return paper_example_points()
