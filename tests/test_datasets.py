"""Tests for the dataset generators and registry."""

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.datasets import (
    DATASETS,
    benchmark_suite,
    chem_proxy,
    gaussian_blobs,
    geolife_proxy,
    household_proxy,
    ht_proxy,
    load_dataset,
    seed_spreader,
    uniform_fill,
)


class TestUniformFill:
    def test_shape(self):
        assert uniform_fill(100, 3, seed=0).shape == (100, 3)

    def test_domain_is_sqrt_n_hypergrid(self):
        points = uniform_fill(400, 2, seed=1)
        assert points.min() >= 0.0
        assert points.max() <= np.sqrt(400)

    def test_reproducible(self):
        assert np.array_equal(uniform_fill(50, 2, seed=7), uniform_fill(50, 2, seed=7))

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            uniform_fill(50, 2, seed=1), uniform_fill(50, 2, seed=2)
        )

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            uniform_fill(0, 2)
        with pytest.raises(InvalidParameterError):
            uniform_fill(10, 0)


class TestSeedSpreader:
    def test_shape_and_reproducibility(self):
        points = seed_spreader(200, 3, seed=3)
        assert points.shape == (200, 3)
        assert np.array_equal(points, seed_spreader(200, 3, seed=3))

    def test_is_clustered_compared_to_uniform(self):
        # Average nearest-neighbour distance should be much smaller than for
        # uniform data over the same domain (the data is locally dense).
        from repro.spatial.knn import knn_distances

        clustered = seed_spreader(400, 2, seed=4)
        uniform = uniform_fill(400, 2, seed=4)
        assert np.median(knn_distances(clustered, 2)) < np.median(
            knn_distances(uniform, 2)
        )

    def test_noise_fraction_bounds(self):
        with pytest.raises(InvalidParameterError):
            seed_spreader(10, 2, noise_fraction=1.5)

    def test_zero_noise(self):
        points = seed_spreader(100, 2, seed=5, noise_fraction=0.0)
        assert points.shape == (100, 2)


class TestGaussianBlobs:
    def test_labels_returned(self):
        points, labels = gaussian_blobs(120, 2, num_clusters=3, seed=6, return_labels=True)
        assert points.shape == (120, 2)
        assert set(labels.tolist()) <= {0, 1, 2}

    def test_without_labels(self):
        points = gaussian_blobs(50, 3, seed=7)
        assert points.shape == (50, 3)

    def test_invalid_cluster_count(self):
        with pytest.raises(InvalidParameterError):
            gaussian_blobs(10, 2, num_clusters=0)


class TestRealProxies:
    @pytest.mark.parametrize(
        "builder,expected_dim",
        [(geolife_proxy, 3), (household_proxy, 7), (ht_proxy, 10), (chem_proxy, 16)],
        ids=["geolife", "household", "ht", "chem"],
    )
    def test_dimensions(self, builder, expected_dim):
        points = builder(200, seed=0)
        assert points.shape == (200, expected_dim)
        assert np.all(np.isfinite(points))

    def test_geolife_is_skewed(self):
        # The paper stresses GeoLife's extreme skew; the proxy should have a
        # heavy-tailed nearest-neighbour distance distribution (dense city
        # clusters plus sparse travel points).
        from repro.spatial.knn import knn_distances

        points = geolife_proxy(800, seed=1)
        nn = knn_distances(points, 2)
        assert np.mean(nn) > 2.0 * np.median(nn)

    def test_invalid_size(self):
        with pytest.raises(InvalidParameterError):
            geolife_proxy(0)


class TestRegistry:
    def test_registry_covers_paper_datasets(self):
        expected = {
            "2D-UniformFill", "3D-UniformFill", "5D-UniformFill", "7D-UniformFill",
            "2D-SS-varden", "3D-SS-varden", "5D-SS-varden", "7D-SS-varden",
            "3D-GeoLife", "7D-Household", "10D-HT", "16D-CHEM",
        }
        assert expected == set(DATASETS)

    def test_load_dataset_respects_n(self):
        points = load_dataset("2D-UniformFill", n=123, seed=0)
        assert points.shape == (123, 2)

    def test_load_dataset_dimensions_match_names(self):
        for name in DATASETS:
            dimension = int(name.split("D-")[0])
            points = load_dataset(name, n=64, seed=0)
            assert points.shape[1] == dimension

    def test_unknown_dataset(self):
        with pytest.raises(InvalidParameterError):
            load_dataset("5D-Nonsense")

    def test_benchmark_suite_small(self):
        suite = benchmark_suite(small=True)
        assert set(suite) == set(DATASETS)
        assert all(points.shape[0] >= 64 for points in suite.values())
