"""Tests for the well-separated pair decomposition and separation predicates."""

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError, NotComputedError
from repro.hdbscan import core_distances
from repro.spatial import KDTree
from repro.wspd import (
    compute_wspd,
    count_wspd_pairs,
    geometrically_separated,
    hdbscan_well_separated,
    mutually_unreachable,
    node_distance,
    node_max_distance,
    well_separated,
)
from repro.wspd.wspd import validate_wspd_realization


class TestSeparationPredicates:
    def _two_leaf_nodes(self, offset):
        points = np.array([[0.0, 0.0], [offset, 0.0]])
        tree = KDTree(points, leaf_size=1)
        leaves = {int(leaf.indices[0]): leaf for leaf in tree.leaves()}
        return tree, leaves[0], leaves[1]

    def test_singletons_always_geometrically_separated(self):
        _, a, b = self._two_leaf_nodes(0.001)
        assert geometrically_separated(a, b)

    def test_node_distance_between_singleton_leaves(self):
        _, a, b = self._two_leaf_nodes(3.0)
        assert node_distance(a, b) == pytest.approx(3.0)
        assert node_max_distance(a, b) == pytest.approx(3.0)

    def test_well_separated_definition_on_internal_nodes(self):
        rng = np.random.default_rng(0)
        cluster_a = rng.random((20, 2))
        cluster_b = rng.random((20, 2)) + 100.0
        tree = KDTree(np.vstack([cluster_a, cluster_b]), leaf_size=32)
        left, right = tree.root.left, tree.root.right
        assert well_separated(left, right, s=2.0)
        assert geometrically_separated(left, right)

    def test_not_separated_when_clusters_touch(self):
        rng = np.random.default_rng(1)
        points = rng.random((64, 2))
        tree = KDTree(points, leaf_size=32)
        left, right = tree.root.left, tree.root.right
        assert not geometrically_separated(left, right)

    def test_mutually_unreachable_requires_annotation(self):
        _, a, b = self._two_leaf_nodes(1.0)
        with pytest.raises(NotComputedError):
            mutually_unreachable(a, b)

    def test_mutually_unreachable_with_large_core_distances(self):
        rng = np.random.default_rng(2)
        points = rng.random((64, 2))
        tree = KDTree(points, leaf_size=32)
        # Uniform huge core distances make every pair mutually unreachable:
        # lhs >= cd_min = 100 and rhs = max(diam, 100) = 100.
        tree.annotate_core_distances(np.full(64, 100.0))
        left, right = tree.root.left, tree.root.right
        assert mutually_unreachable(left, right)
        assert hdbscan_well_separated(left, right)

    def test_hdbscan_separation_is_disjunction(self):
        rng = np.random.default_rng(3)
        cluster_a = rng.random((10, 2))
        cluster_b = rng.random((10, 2)) + 50.0
        tree = KDTree(np.vstack([cluster_a, cluster_b]), leaf_size=16)
        tree.annotate_core_distances(np.full(20, 1e-6))
        left, right = tree.root.left, tree.root.right
        # Geometrically separated, tiny core distances: not mutually
        # unreachable but still hdbscan-well-separated.
        assert geometrically_separated(left, right)
        assert hdbscan_well_separated(left, right)


class TestWSPDConstruction:
    @pytest.mark.parametrize("n,d", [(40, 1), (60, 2), (80, 3), (50, 5)])
    def test_realization_covers_every_pair_exactly_once(self, n, d):
        points = np.random.default_rng(n + d).random((n, d))
        tree = KDTree(points, leaf_size=1)
        pairs = compute_wspd(tree)
        assert validate_wspd_realization(tree, pairs)

    def test_every_recorded_pair_is_well_separated(self, small_points_2d):
        tree = KDTree(small_points_2d, leaf_size=1)
        for pair in compute_wspd(tree, s=2.0):
            assert well_separated(pair.node_a, pair.node_b, 2.0)

    def test_linear_number_of_pairs(self):
        # The number of pairs should grow roughly linearly in n for fixed
        # dimension (it is O(n) with a dimension-dependent constant).
        counts = {}
        for n in (100, 200, 400):
            points = np.random.default_rng(n).random((n, 2))
            counts[n] = count_wspd_pairs(KDTree(points, leaf_size=1))
        ratio_1 = counts[200] / counts[100]
        ratio_2 = counts[400] / counts[200]
        assert ratio_1 < 3.0
        assert ratio_2 < 3.0

    def test_larger_separation_constant_gives_more_pairs(self, small_points_2d):
        tree = KDTree(small_points_2d, leaf_size=1)
        assert count_wspd_pairs(tree, s=4.0) > count_wspd_pairs(tree, s=2.0)

    def test_hdbscan_separation_gives_no_more_pairs(self, small_points_3d):
        min_pts = 10
        core = core_distances(small_points_3d, min_pts)
        tree = KDTree(small_points_3d, leaf_size=1)
        tree.annotate_core_distances(core)
        geometric_count = count_wspd_pairs(tree, separation="geometric")
        hdbscan_count = count_wspd_pairs(tree, separation="hdbscan")
        assert hdbscan_count <= geometric_count

    def test_hdbscan_separation_strictly_fewer_for_large_minpts(self, varden_points):
        min_pts = 30
        core = core_distances(varden_points, min_pts)
        tree = KDTree(varden_points, leaf_size=1)
        tree.annotate_core_distances(core)
        geometric_count = count_wspd_pairs(tree, separation="geometric")
        hdbscan_count = count_wspd_pairs(tree, separation="hdbscan")
        assert hdbscan_count < geometric_count

    def test_hdbscan_separation_requires_annotation(self, small_points_2d):
        tree = KDTree(small_points_2d, leaf_size=1)
        with pytest.raises(NotComputedError):
            compute_wspd(tree, separation="hdbscan")

    def test_unknown_separation_rejected(self, small_points_2d):
        tree = KDTree(small_points_2d, leaf_size=1)
        with pytest.raises(InvalidParameterError):
            compute_wspd(tree, separation="bogus")

    def test_pair_cardinality(self, small_points_2d):
        tree = KDTree(small_points_2d, leaf_size=1)
        for pair in compute_wspd(tree):
            assert pair.cardinality == pair.node_a.size + pair.node_b.size

    def test_two_points(self):
        tree = KDTree(np.array([[0.0, 0.0], [1.0, 1.0]]), leaf_size=1)
        pairs = compute_wspd(tree)
        assert len(pairs) == 1

    def test_duplicate_points_still_covered(self):
        points = np.vstack([np.zeros((5, 2)), np.ones((5, 2))])
        tree = KDTree(points, leaf_size=1)
        pairs = compute_wspd(tree)
        assert validate_wspd_realization(tree, pairs)
