"""Unit tests for the approximation subsystem's building blocks.

The end-to-end (1+ε) contracts are exercised by the conformance matrix
(``tests/test_conformance.py``) and the property suite; these tests pin the
individual mechanisms: the ε-certified separation predicate, the
center-nearest representatives, the skeleton's structural connectivity, the
chunk-pruned Kruskal's equality with the plain batch, and the knob plumbing
through ``emst()`` / ``hdbscan()`` / the estimators.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import approx_emst, approx_hdbscan_mst
from repro.approx.emst import candidate_mst, skeleton_edges
from repro.core.errors import InvalidParameterError
from repro.emst import emst
from repro.estimators import EMST, HDBSCAN
from repro.hdbscan import adjusted_rand_index, hdbscan
from repro.mst.edges import EdgeList
from repro.mst.kruskal import kruskal, kruskal_filtered_arrays
from repro.parallel.unionfind import UnionFind
from repro.spatial.kdtree import KDTree
from repro.wspd.separation import (
    bccp_lower_bounds,
    box_gaps,
    epsilon_certified_mask,
    node_representatives,
    representative_distances,
)
from repro.wspd.wspd import compute_wspd_ids, separation_mask


@pytest.fixture(scope="module")
def tree():
    points = np.random.default_rng(77).random((120, 3))
    return KDTree(points, leaf_size=1)


class TestCertifiedSeparation:
    def test_lower_bounds_never_exceed_true_bccp(self, tree):
        flat = tree.flat
        pair_a, pair_b = compute_wspd_ids(tree)
        rep = representative_distances(flat, pair_a, pair_b)
        lower = bccp_lower_bounds(flat, pair_a, pair_b, rep)
        points = flat.points
        for a, b, bound in zip(
            pair_a[:200].tolist(), pair_b[:200].tolist(), lower[:200].tolist()
        ):
            members_a = flat.perm[flat.node_start[a] : flat.node_end[a]]
            members_b = flat.perm[flat.node_start[b] : flat.node_end[b]]
            cross = np.linalg.norm(
                points[members_a][:, None, :] - points[members_b][None, :, :],
                axis=2,
            )
            assert bound <= cross.min() + 1e-12

    def test_box_gaps_lower_bound_center_gaps(self, tree):
        flat = tree.flat
        pair_a, pair_b = compute_wspd_ids(tree)
        gaps = box_gaps(flat, pair_a, pair_b)
        rep = representative_distances(flat, pair_a, pair_b)
        assert np.all(gaps >= 0.0)
        assert np.all(gaps <= rep + 1e-12)

    def test_singleton_pairs_always_certify(self, tree):
        flat = tree.flat
        leaves = flat.leaf_ids()
        a = leaves[: leaves.size // 2]
        b = leaves[leaves.size - a.size :]
        keep = a != b
        a, b = a[keep], b[keep]
        mask = epsilon_certified_mask(flat, a, b, 2.0, 1e-12)
        # Singleton pairs are separated iff classically separated; the
        # certificate itself can never reject them (rep == BCCP).
        geometric = separation_mask(flat, "geometric", 2.0)(a, b)
        assert np.array_equal(mask, geometric)

    def test_smaller_epsilon_gives_no_fewer_pairs(self, tree):
        sizes = {}
        for epsilon in (0.01, 0.1, 0.5, 1.0):
            pair_a, _ = compute_wspd_ids(
                tree, separation="epsilon-certified", s=2.0, epsilon=epsilon
            )
            sizes[epsilon] = pair_a.size
        assert sizes[0.01] >= sizes[0.1] >= sizes[0.5] >= sizes[1.0]

    def test_separation_mask_requires_epsilon(self, tree):
        with pytest.raises(InvalidParameterError):
            separation_mask(tree.flat, "epsilon-certified", 2.0)

    def test_unknown_separation_rejected(self, tree):
        with pytest.raises(InvalidParameterError):
            separation_mask(tree.flat, "no-such-notion", 2.0)


class TestRepresentatives:
    def test_center_nearest_is_member_and_minimizes(self, tree):
        flat = tree.flat
        reps = node_representatives(flat)
        points = flat.points
        for node in range(0, flat.num_nodes, 7):
            members = flat.perm[flat.node_start[node] : flat.node_end[node]]
            assert reps[node] in members
            distances = np.linalg.norm(
                points[members] - flat.node_center[node], axis=1
            )
            best = np.linalg.norm(points[reps[node]] - flat.node_center[node])
            assert best <= distances.min() + 1e-12


class TestSkeleton:
    def test_skeleton_spans_every_point(self, tree):
        flat = tree.flat
        u, v = skeleton_edges(flat)
        assert u.size == flat.size - 1
        union_find = UnionFind(flat.size)
        for a, b in zip(u.tolist(), v.tolist()):
            union_find.union(a, b)
        assert union_find.num_components == 1


class TestFilteredKruskal:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("chunk_size", [7, 64, 100_000])
    def test_equals_plain_kruskal(self, seed, chunk_size):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 80))
        m = int(rng.integers(1, 500))
        u = rng.integers(0, n, m).astype(np.int64)
        v = rng.integers(0, n, m).astype(np.int64)
        keep = u != v
        u, v = u[keep], v[keep]
        w = np.round(rng.random(u.size), 2)  # deliberate weight ties
        reference = kruskal((u, v, w), n)
        output = EdgeList()
        kruskal_filtered_arrays(
            u, v, w, output, UnionFind(n), chunk_size=chunk_size
        )
        ru, rv, rw = reference.as_arrays()
        ou, ov, ow = output.as_arrays()
        canonical = lambda a, b, c: sorted(
            zip(np.minimum(a, b).tolist(), np.maximum(a, b).tolist(), c.tolist())
        )
        assert canonical(ru, rv, rw) == canonical(ou, ov, ow)

    def test_candidate_mst_empty_input(self):
        empty = np.empty(0, dtype=np.int64)
        result = candidate_mst(empty, empty, np.empty(0), 5)
        assert len(result) == 0


class TestKnobPlumbing:
    def test_negative_epsilon_rejected_everywhere(self):
        points = np.random.default_rng(0).random((20, 2))
        with pytest.raises(InvalidParameterError):
            approx_emst(points, -0.1)
        with pytest.raises(InvalidParameterError):
            approx_hdbscan_mst(points, 3, epsilon=-0.1)
        with pytest.raises(InvalidParameterError):
            EMST(epsilon=-0.1).fit(points)
        with pytest.raises(InvalidParameterError):
            HDBSCAN(approx_epsilon=-0.1).fit(points)

    def test_invalid_representative_rejected(self):
        points = np.random.default_rng(0).random((20, 2))
        with pytest.raises(InvalidParameterError):
            approx_emst(points, 0.5, representative="median")

    def test_estimator_epsilon_conflicts_with_exact_method(self):
        points = np.random.default_rng(0).random((20, 2))
        with pytest.raises(InvalidParameterError):
            EMST(method="gfk", epsilon=0.5).fit(points)
        with pytest.raises(InvalidParameterError):
            HDBSCAN(method="gantao", approx_epsilon=0.5).fit(points)

    def test_epsilon_zero_delegates_to_exact(self):
        points = np.random.default_rng(1).random((60, 2))
        assert approx_emst(points, 0.0).method == "memogfk"
        assert emst(points, method="wspd-approx", epsilon=0.0).method == "memogfk"
        assert (
            approx_hdbscan_mst(points, 5, epsilon=0.0).method == "hdbscan-memogfk"
        )

    def test_hdbscan_api_forwards_epsilon(self):
        points = np.random.default_rng(2).random((80, 2))
        result = hdbscan(points, min_pts=5, method="wspd-approx", epsilon=0.5)
        assert result.mst.method == "hdbscan-wspd-approx"
        assert result.mst.stats["epsilon"] == 0.5
        assert result.mst.is_spanning_tree()

    def test_num_threads_byte_identical(self):
        points = np.random.default_rng(3).random((300, 3))
        reference = approx_emst(points, 0.5, num_threads=1)
        threaded = approx_emst(points, 0.5, num_threads=4)
        for left, right in zip(
            reference.edges.as_arrays(), threaded.edges.as_arrays()
        ):
            assert np.array_equal(left, right)


class TestAdjustedRandIndex:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)
        renamed = np.array([5, 5, 3, 3, -1, -1])
        assert adjusted_rand_index(labels, renamed) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, 3000)
        b = rng.integers(0, 5, 3000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_known_value(self):
        # Classic textbook example.
        a = [0, 0, 0, 1, 1, 1]
        b = [0, 0, 1, 1, 2, 2]
        assert adjusted_rand_index(a, b) == pytest.approx(0.24242424, abs=1e-6)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(InvalidParameterError):
            adjusted_rand_index([0, 1], [0, 1, 2])
