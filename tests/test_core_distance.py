"""Tests for repro.core.distance."""

import numpy as np
import pytest

from repro.core.distance import (
    closest_pair_bruteforce,
    cross_distances,
    euclidean,
    pairwise_distances,
    squared_distances_to_point,
)


class TestEuclidean:
    def test_pythagorean_triangle(self):
        assert euclidean([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_zero_distance(self):
        assert euclidean([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_one_dimensional(self):
        assert euclidean([2.0], [-3.0]) == pytest.approx(5.0)

    def test_symmetry(self):
        p, q = [1.0, 5.0, -2.0], [3.0, 0.0, 7.0]
        assert euclidean(p, q) == pytest.approx(euclidean(q, p))

    def test_accepts_lists(self):
        assert euclidean([0, 0], [1, 1]) == pytest.approx(np.sqrt(2))


class TestCrossDistances:
    def test_shape(self):
        a = np.zeros((3, 2))
        b = np.zeros((5, 2))
        assert cross_distances(a, b).shape == (3, 5)

    def test_matches_naive_loop(self):
        rng = np.random.default_rng(0)
        a = rng.random((10, 4))
        b = rng.random((7, 4))
        matrix = cross_distances(a, b)
        for i in range(10):
            for j in range(7):
                assert matrix[i, j] == pytest.approx(euclidean(a[i], b[j]), abs=1e-9)

    def test_no_negative_values_from_cancellation(self):
        a = np.full((4, 3), 1e8)
        matrix = cross_distances(a, a)
        assert np.all(matrix >= 0)

    def test_pairwise_is_symmetric(self):
        rng = np.random.default_rng(1)
        points = rng.random((20, 3))
        matrix = pairwise_distances(points)
        assert np.allclose(matrix, matrix.T)

    def test_pairwise_diagonal_near_zero(self):
        rng = np.random.default_rng(2)
        points = rng.random((20, 3))
        matrix = pairwise_distances(points)
        assert np.allclose(np.diag(matrix), 0.0, atol=1e-6)


class TestSquaredDistancesToPoint:
    def test_matches_direct_computation(self):
        rng = np.random.default_rng(3)
        points = rng.random((15, 3))
        query = rng.random(3)
        expected = np.array([euclidean(p, query) ** 2 for p in points])
        assert np.allclose(squared_distances_to_point(points, query), expected)

    def test_zero_for_identical_point(self):
        points = np.array([[1.0, 2.0]])
        assert squared_distances_to_point(points, np.array([1.0, 2.0]))[0] == 0.0


class TestClosestPairBruteforce:
    def test_finds_known_pair(self):
        a = np.array([[0.0, 0.0], [10.0, 10.0]])
        b = np.array([[5.0, 5.0], [0.1, 0.0]])
        i, j, distance = closest_pair_bruteforce(a, b)
        assert (i, j) == (0, 1)
        assert distance == pytest.approx(0.1)

    def test_distance_is_minimum_of_matrix(self):
        rng = np.random.default_rng(4)
        a = rng.random((12, 3))
        b = rng.random((9, 3))
        _, _, distance = closest_pair_bruteforce(a, b)
        assert distance == pytest.approx(cross_distances(a, b).min())

    def test_single_points(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        i, j, distance = closest_pair_bruteforce(a, b)
        assert (i, j) == (0, 0)
        assert distance == pytest.approx(5.0)
