"""Tests for k-NN queries and the Delaunay edge extraction."""

import numpy as np
import pytest

from repro.core.distance import cross_distances
from repro.core.errors import InvalidParameterError
from repro.spatial import KDTree, delaunay_edges, knn, knn_bruteforce
from repro.spatial.knn import knn_distances


def reference_knn(points, k):
    """Exact k-NN distances via the full distance matrix."""
    matrix = cross_distances(points, points)
    return np.sort(matrix, axis=1)[:, :k]


class TestKnnKdtree:
    def test_matches_bruteforce_distances(self, small_points_3d):
        tree = KDTree(small_points_3d, leaf_size=8)
        _, distances = knn(tree, 5)
        expected = reference_knn(small_points_3d, 5)
        assert np.allclose(distances, expected, atol=1e-6)

    def test_first_neighbor_is_self(self, small_points_2d):
        tree = KDTree(small_points_2d, leaf_size=4)
        indices, distances = knn(tree, 3)
        assert np.array_equal(indices[:, 0], np.arange(len(small_points_2d)))
        assert np.allclose(distances[:, 0], 0.0, atol=1e-9)

    def test_k_equals_n(self):
        points = np.random.default_rng(0).random((12, 2))
        tree = KDTree(points, leaf_size=2)
        _, distances = knn(tree, 12)
        assert distances.shape == (12, 12)
        assert np.all(np.diff(distances, axis=1) >= -1e-12)

    def test_distances_sorted(self, small_points_3d):
        tree = KDTree(small_points_3d, leaf_size=8)
        _, distances = knn(tree, 6)
        assert np.all(np.diff(distances, axis=1) >= -1e-12)

    def test_external_queries(self, small_points_2d):
        tree = KDTree(small_points_2d, leaf_size=4)
        queries = np.array([[0.5, 0.5], [0.0, 0.0]])
        indices, distances = knn(tree, 4, queries=queries)
        assert indices.shape == (2, 4)
        expected = np.sort(cross_distances(queries, small_points_2d), axis=1)[:, :4]
        assert np.allclose(distances, expected, atol=1e-6)

    def test_query_dimension_mismatch(self, small_points_2d):
        tree = KDTree(small_points_2d)
        with pytest.raises(InvalidParameterError):
            knn(tree, 2, queries=np.zeros((3, 5)))

    def test_k_out_of_range(self, small_points_2d):
        tree = KDTree(small_points_2d)
        with pytest.raises(InvalidParameterError):
            knn(tree, 0)
        with pytest.raises(InvalidParameterError):
            knn(tree, len(small_points_2d) + 1)

    def test_threaded_matches_sequential(self, small_points_3d):
        tree = KDTree(small_points_3d, leaf_size=8)
        _, sequential = knn(tree, 4)
        _, threaded = knn(tree, 4, num_threads=4)
        assert np.allclose(sequential, threaded)


class TestKnnBruteforce:
    def test_matches_reference(self, small_points_5d):
        _, distances = knn_bruteforce(small_points_5d, 7)
        assert np.allclose(distances, reference_knn(small_points_5d, 7), atol=1e-6)

    def test_chunking_does_not_change_result(self, small_points_3d):
        _, d_small_chunks = knn_bruteforce(small_points_3d, 5, chunk_size=17)
        _, d_one_chunk = knn_bruteforce(small_points_3d, 5, chunk_size=10_000)
        assert np.allclose(d_small_chunks, d_one_chunk)

    def test_indices_refer_to_correct_distances(self, small_points_2d):
        indices, distances = knn_bruteforce(small_points_2d, 4)
        for row, (index_row, distance_row) in enumerate(zip(indices, distances)):
            recomputed = np.linalg.norm(
                small_points_2d[index_row] - small_points_2d[row], axis=1
            )
            assert np.allclose(recomputed, distance_row, atol=1e-6)

    def test_invalid_k(self, small_points_2d):
        with pytest.raises(InvalidParameterError):
            knn_bruteforce(small_points_2d, 0)

    def test_knn_distances_is_kth_column(self, small_points_3d):
        core = knn_distances(small_points_3d, 5)
        _, distances = knn_bruteforce(small_points_3d, 5)
        assert np.allclose(core, distances[:, -1])


class TestDelaunay:
    def test_edge_weights_are_euclidean(self):
        points = np.random.default_rng(1).random((40, 2))
        endpoints, weights = delaunay_edges(points)
        for (u, v), w in zip(endpoints, weights):
            assert w == pytest.approx(np.linalg.norm(points[u] - points[v]), abs=1e-9)

    def test_edges_are_unique_and_undirected(self):
        points = np.random.default_rng(2).random((60, 2))
        endpoints, _ = delaunay_edges(points)
        seen = set()
        for u, v in endpoints:
            assert u < v
            assert (u, v) not in seen
            seen.add((u, v))

    def test_planar_edge_count_bound(self):
        points = np.random.default_rng(3).random((100, 2))
        endpoints, _ = delaunay_edges(points)
        # A planar graph has at most 3n - 6 edges.
        assert endpoints.shape[0] <= 3 * 100 - 6

    def test_triangulation_is_connected(self):
        from repro.parallel import UnionFind

        points = np.random.default_rng(4).random((50, 2))
        endpoints, _ = delaunay_edges(points)
        union_find = UnionFind(50)
        for u, v in endpoints:
            union_find.union(int(u), int(v))
        assert union_find.num_components == 1

    def test_two_points(self):
        endpoints, weights = delaunay_edges(np.array([[0.0, 0.0], [1.0, 0.0]]))
        assert endpoints.shape == (1, 2)
        assert weights[0] == pytest.approx(1.0)

    def test_rejects_non_2d_points(self):
        with pytest.raises(InvalidParameterError):
            delaunay_edges(np.zeros((10, 3)))
