"""Property-based tests (hypothesis) for the core invariants.

These complement the example-based tests with randomized coverage of the
library's central claims:

* every EMST variant produces a spanning tree of the same total weight as the
  brute-force reference, on arbitrary point sets;
* the WSPD is an exact realization (every unordered pair covered exactly once);
* the HDBSCAN* MST variants agree with the brute-force mutual-reachability MST;
* the ordered dendrogram's in-order leaf traversal reproduces Prim's order;
* union-find never loses or invents connectivity;
* prefix sums / list ranking match their sequential references.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.approx import approx_emst
from repro.core.errors import InvalidPointSetError
from repro.dendrogram import dendrogram_sequential, dendrogram_topdown, reachability_from_dendrogram, reachability_plot
from repro.emst import emst, emst_bruteforce, emst_gfk, emst_memogfk, emst_naive
from repro.estimators import EMST, HDBSCAN
from repro.hdbscan import core_distances, hdbscan_mst_bruteforce, hdbscan_mst_memogfk
from repro.mst import boruvka, kruskal, total_weight
from repro.parallel import UnionFind, list_rank, prefix_sum
from repro.spatial import KDTree
from repro.wspd import compute_wspd
from repro.wspd.wspd import validate_wspd_realization

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def point_sets(min_points=2, max_points=40, max_dim=4):
    """Strategy producing small float point arrays with distinct scales."""
    return st.integers(min_points, max_points).flatmap(
        lambda n: st.integers(1, max_dim).flatmap(
            lambda d: arrays(
                dtype=np.float64,
                shape=(n, d),
                elements=st.floats(
                    min_value=-100.0, max_value=100.0, allow_nan=False, width=32
                ),
            )
        )
    )


class TestEMSTProperties:
    @SETTINGS
    @given(points=point_sets())
    def test_all_variants_match_bruteforce_weight(self, points):
        reference = emst_bruteforce(points).total_weight
        for algorithm in (emst_naive, emst_gfk, emst_memogfk):
            result = algorithm(points)
            assert result.is_spanning_tree()
            assert result.total_weight == pytest.approx(reference, rel=1e-6, abs=1e-6)

    @SETTINGS
    @given(points=point_sets(min_points=2, max_points=30))
    def test_memogfk_edge_weights_are_true_distances(self, points):
        result = emst_memogfk(points)
        for u, v, w in result.edges:
            assert w == pytest.approx(float(np.linalg.norm(points[u] - points[v])), abs=1e-9)


def _canonical_edge_set(result):
    return {(min(int(u), int(v)), max(int(u), int(v))) for u, v, _ in result.edges}


def _tree_adjacency(result, n):
    adjacency = [[] for _ in range(n)]
    for u, v, w in result.edges:
        adjacency[int(u)].append((int(v), float(w)))
        adjacency[int(v)].append((int(u), float(w)))
    return adjacency


def _path_max_weight(adjacency, source, target):
    """Bottleneck (maximum edge weight) of the unique tree path source→target."""
    stack = [(source, -1, 0.0)]
    while stack:
        node, parent, best = stack.pop()
        if node == target:
            return best
        for neighbor, weight in adjacency[node]:
            if neighbor != parent:
                stack.append((neighbor, node, max(best, weight)))
    raise AssertionError("tree is not connected")


class TestMSTStructuralProperties:
    """Cut/cycle-property spot checks and invariance under relabeling and
    rigid motion, on seeded random instances."""

    @SETTINGS
    @given(seed=st.integers(0, 10_000), n=st.integers(5, 35))
    def test_cycle_property(self, seed, n):
        # For any non-tree pair (u, v), every edge on the tree path between
        # u and v weighs at most d(u, v) — otherwise swapping would improve
        # the tree.
        points = np.random.default_rng(seed).random((n, 3))
        result = emst_memogfk(points)
        adjacency = _tree_adjacency(result, n)
        tree_edges = _canonical_edge_set(result)
        for u in range(0, n, 3):
            for v in range(u + 1, n, 2):
                if (u, v) in tree_edges:
                    continue
                direct = float(np.linalg.norm(points[u] - points[v]))
                assert _path_max_weight(adjacency, u, v) <= direct + 1e-9

    @SETTINGS
    @given(seed=st.integers(0, 10_000), n=st.integers(5, 30))
    def test_cut_property(self, seed, n):
        # Each tree edge is a minimum-weight edge across the cut induced by
        # removing it.
        points = np.random.default_rng(seed).random((n, 3))
        result = emst_memogfk(points)
        edges = [(int(u), int(v), float(w)) for u, v, w in result.edges]
        for index, (u, v, w) in enumerate(edges):
            # Components of the tree minus this edge, via flood fill.
            adjacency = [[] for _ in range(n)]
            for j, (a, b, _) in enumerate(edges):
                if j != index:
                    adjacency[a].append(b)
                    adjacency[b].append(a)
            side = np.zeros(n, dtype=bool)
            stack = [u]
            side[u] = True
            while stack:
                node = stack.pop()
                for neighbor in adjacency[node]:
                    if not side[neighbor]:
                        side[neighbor] = True
                        stack.append(neighbor)
            crossing = np.linalg.norm(
                points[side][:, None, :] - points[~side][None, :, :], axis=2
            )
            assert w <= float(crossing.min()) + 1e-9

    @SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_permutation_invariance(self, seed):
        # Relabeling the input points relabels the tree and nothing else.
        rng = np.random.default_rng(seed)
        points = rng.random((40, 3))
        permutation = rng.permutation(40)
        original = emst(points)
        permuted = emst(points[permutation])
        assert permuted.total_weight == pytest.approx(
            original.total_weight, rel=1e-9
        )
        mapped = {
            (min(permutation[u], permutation[v]), max(permutation[u], permutation[v]))
            for u, v in _canonical_edge_set(permuted)
        }
        assert mapped == _canonical_edge_set(original)

    @SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_rigid_motion_invariance(self, seed):
        # Euclidean distances — and therefore the MST — are invariant under
        # rotation plus translation.
        rng = np.random.default_rng(seed)
        points = rng.random((40, 3))
        rotation, _ = np.linalg.qr(rng.normal(size=(3, 3)))
        moved = points @ rotation.T + rng.normal(size=3)
        original = emst(points)
        transformed = emst(moved)
        assert transformed.total_weight == pytest.approx(
            original.total_weight, rel=1e-9
        )
        assert _canonical_edge_set(transformed) == _canonical_edge_set(original)

    @SETTINGS
    @given(seed=st.integers(0, 10_000), epsilon=st.sampled_from([0.1, 0.5, 1.0]))
    def test_approx_weight_bound_random_instances(self, seed, epsilon):
        points = np.random.default_rng(seed).random((60, 3))
        exact = emst(points).total_weight
        result = approx_emst(points, epsilon)
        assert result.is_spanning_tree()
        assert exact - 1e-9 <= result.total_weight <= (1 + epsilon) * exact + 1e-9


class TestDegenerateInputs:
    """n ∈ {0, 1, 2} and duplicate points through every public entry."""

    def test_empty_input_rejected_everywhere(self):
        empty = np.empty((0, 2))
        with pytest.raises(InvalidPointSetError):
            emst(empty)
        with pytest.raises(InvalidPointSetError):
            approx_emst(empty, 0.5)
        with pytest.raises(InvalidPointSetError):
            EMST().fit(empty)
        with pytest.raises(InvalidPointSetError):
            HDBSCAN().fit(empty)

    @pytest.mark.parametrize("epsilon", [0.0, 0.5])
    def test_single_point(self, epsilon):
        point = np.array([[0.25, 0.75]])
        result = approx_emst(point, epsilon)
        assert result.num_edges == 0 and result.num_points == 1
        assert emst(point).num_edges == 0
        model = EMST(epsilon=epsilon).fit(point)
        assert model.edges_.shape == (0, 2) and model.total_weight_ == 0.0
        labels = HDBSCAN(min_pts=1).fit_predict(point)
        assert labels.tolist() == [-1]

    @pytest.mark.parametrize("epsilon", [0.0, 0.5])
    def test_two_points(self, epsilon):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        result = approx_emst(points, epsilon)
        assert result.num_edges == 1
        assert result.total_weight == pytest.approx(5.0)
        assert emst(points).total_weight == pytest.approx(5.0)
        model = EMST(epsilon=epsilon, n_clusters=2).fit(points)
        assert model.total_weight_ == pytest.approx(5.0)
        assert set(model.labels_.tolist()) == {0, 1}

    @pytest.mark.parametrize("epsilon", [0.0, 0.5])
    def test_duplicate_points(self, epsilon):
        points = np.zeros((7, 3))
        result = approx_emst(points, epsilon)
        assert result.is_spanning_tree()
        assert result.total_weight == 0.0
        assert emst(points).total_weight == 0.0
        model = EMST(epsilon=epsilon).fit(points)
        assert model.total_weight_ == 0.0
        labels = HDBSCAN(min_pts=3, min_cluster_size=2).fit_predict(points)
        assert labels.shape == (7,)

    def test_mixed_duplicates_and_distinct(self):
        points = np.array(
            [[0.0, 0.0], [0.0, 0.0], [0.0, 0.0], [1.0, 0.0], [1.0, 0.0], [5.0, 5.0]]
        )
        exact = emst(points).total_weight
        for epsilon in (0.1, 1.0):
            result = approx_emst(points, epsilon)
            assert result.is_spanning_tree()
            assert exact - 1e-12 <= result.total_weight <= (1 + epsilon) * exact + 1e-9


class TestWSPDProperties:
    @SETTINGS
    @given(points=point_sets(min_points=2, max_points=30, max_dim=3))
    def test_realization_exact_cover(self, points):
        tree = KDTree(points, leaf_size=1)
        pairs = compute_wspd(tree)
        assert validate_wspd_realization(tree, pairs)


class TestHDBSCANProperties:
    @SETTINGS
    @given(points=point_sets(min_points=5, max_points=35, max_dim=3), min_pts=st.integers(1, 5))
    def test_memogfk_matches_bruteforce(self, points, min_pts):
        min_pts = min(min_pts, points.shape[0])
        reference = hdbscan_mst_bruteforce(points, min_pts).total_weight
        result = hdbscan_mst_memogfk(points, min_pts)
        assert result.is_spanning_tree()
        assert result.total_weight == pytest.approx(reference, rel=1e-6, abs=1e-6)

    @SETTINGS
    @given(points=point_sets(min_points=4, max_points=30, max_dim=3))
    def test_core_distances_bounded_by_diameter(self, points):
        min_pts = min(3, points.shape[0])
        core = core_distances(points, min_pts)
        diameter = float(np.linalg.norm(points.max(axis=0) - points.min(axis=0)))
        assert np.all(core >= 0)
        assert np.all(core <= diameter + 1e-9)


class TestDendrogramProperties:
    @SETTINGS
    @given(
        n=st.integers(3, 40),
        seed=st.integers(0, 10_000),
        start_fraction=st.floats(0.0, 0.999),
    )
    def test_topdown_reproduces_prim_order(self, n, seed, start_fraction):
        rng = np.random.default_rng(seed)
        # Random tree with distinct weights.
        weights = rng.permutation(n - 1) + rng.random(n - 1) * 0.5
        edges = [
            (int(rng.integers(0, i)), i, float(weights[i - 1])) for i in range(1, n)
        ]
        start = int(start_fraction * n)
        dendrogram = dendrogram_topdown(edges, n, start=start)
        assert dendrogram.is_valid()
        order, reach = reachability_from_dendrogram(dendrogram)
        order_ref, reach_ref = reachability_plot(edges, n, start=start)
        assert np.array_equal(order, order_ref)
        assert np.allclose(reach[1:], reach_ref[1:])

    @SETTINGS
    @given(n=st.integers(2, 50), seed=st.integers(0, 10_000))
    def test_sequential_and_topdown_same_heights(self, n, seed):
        rng = np.random.default_rng(seed)
        edges = [
            (int(rng.integers(0, i)), i, float(rng.random())) for i in range(1, n)
        ]
        heights_a = sorted(dendrogram_sequential(edges, n).heights().tolist())
        heights_b = sorted(dendrogram_topdown(edges, n).heights().tolist())
        assert np.allclose(heights_a, heights_b)


class TestSubstrateProperties:
    @SETTINGS
    @given(values=st.lists(st.integers(-1000, 1000), max_size=200))
    def test_prefix_sum_matches_reference(self, values):
        prefix, tot = prefix_sum(values)
        running = 0
        for index, value in enumerate(values):
            assert prefix[index] == running
            running += value
        assert tot == sum(values)

    @SETTINGS
    @given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
    def test_list_rank_matches_reverse_cumsum(self, values):
        n = len(values)
        successor = list(range(1, n)) + [-1]
        ranks = list_rank(successor, values)
        expected = np.cumsum(np.asarray(values)[::-1])[::-1]
        assert np.allclose(ranks, expected, rtol=1e-9, atol=1e-6)

    @SETTINGS
    @given(
        n=st.integers(2, 60),
        operations=st.lists(st.tuples(st.integers(0, 59), st.integers(0, 59)), max_size=80),
    )
    def test_union_find_matches_naive_partition(self, n, operations):
        union_find = UnionFind(n)
        partition = {i: {i} for i in range(n)}
        for u, v in operations:
            u, v = u % n, v % n
            union_find.union(u, v)
            if partition[u] is not partition[v]:
                merged = partition[u] | partition[v]
                for member in merged:
                    partition[member] = merged
        for i in range(0, n, 3):
            for j in range(0, n, 5):
                assert union_find.connected(i, j) == (j in partition[i])

    @SETTINGS
    @given(
        n=st.integers(2, 30),
        extra=st.integers(0, 60),
        seed=st.integers(0, 10_000),
    )
    def test_kruskal_boruvka_agree_on_random_graphs(self, n, extra, seed):
        rng = np.random.default_rng(seed)
        edges = [(i - 1, i, float(rng.random())) for i in range(1, n)]
        for _ in range(extra):
            u, v = rng.integers(0, n, size=2)
            if u != v:
                edges.append((int(u), int(v), float(rng.random())))
        assert total_weight(kruskal(edges, n)) == pytest.approx(
            total_weight(boruvka(edges, n))
        )
