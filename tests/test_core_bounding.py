"""Tests for repro.core.bounding."""

import numpy as np
import pytest

from repro.core.bounding import BoundingBox, BoundingSphere


class TestBoundingBox:
    def test_of_points(self):
        box = BoundingBox.of_points(np.array([[0.0, 5.0], [2.0, 1.0], [1.0, 3.0]]))
        assert np.array_equal(box.lower, [0.0, 1.0])
        assert np.array_equal(box.upper, [2.0, 5.0])

    def test_center_and_extent(self):
        box = BoundingBox(np.array([0.0, 0.0]), np.array([2.0, 4.0]))
        assert np.array_equal(box.center, [1.0, 2.0])
        assert np.array_equal(box.extent, [2.0, 4.0])

    def test_diagonal(self):
        box = BoundingBox(np.array([0.0, 0.0]), np.array([3.0, 4.0]))
        assert box.diagonal == pytest.approx(5.0)

    def test_contains(self):
        box = BoundingBox(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert box.contains(np.array([0.5, 0.5]))
        assert not box.contains(np.array([1.5, 0.5]))

    def test_contains_with_tolerance(self):
        box = BoundingBox(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert box.contains(np.array([1.0 + 1e-12, 0.5]), tol=1e-9)

    def test_merge(self):
        a = BoundingBox(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = BoundingBox(np.array([2.0, -1.0]), np.array([3.0, 0.5]))
        merged = a.merge(b)
        assert np.array_equal(merged.lower, [0.0, -1.0])
        assert np.array_equal(merged.upper, [3.0, 1.0])

    def test_min_distance_disjoint(self):
        a = BoundingBox(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = BoundingBox(np.array([4.0, 5.0]), np.array([6.0, 6.0]))
        assert a.min_distance(b) == pytest.approx(5.0)

    def test_min_distance_overlapping_is_zero(self):
        a = BoundingBox(np.array([0.0, 0.0]), np.array([2.0, 2.0]))
        b = BoundingBox(np.array([1.0, 1.0]), np.array([3.0, 3.0]))
        assert a.min_distance(b) == 0.0

    def test_max_distance_upper_bounds_all_pairs(self):
        rng = np.random.default_rng(0)
        points_a = rng.random((30, 3))
        points_b = rng.random((30, 3)) + 2.0
        a = BoundingBox.of_points(points_a)
        b = BoundingBox.of_points(points_b)
        from repro.core.distance import cross_distances

        assert cross_distances(points_a, points_b).max() <= a.max_distance(b) + 1e-9

    def test_min_distance_to_point(self):
        box = BoundingBox(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert box.min_distance_to_point(np.array([0.5, 0.5])) == 0.0
        assert box.min_distance_to_point(np.array([4.0, 5.0])) == pytest.approx(5.0)

    def test_to_sphere_contains_corners(self):
        box = BoundingBox(np.array([0.0, 0.0]), np.array([2.0, 2.0]))
        sphere = box.to_sphere()
        assert sphere.contains(np.array([0.0, 0.0]))
        assert sphere.contains(np.array([2.0, 2.0]))


class TestBoundingSphere:
    def test_of_points_contains_all(self):
        rng = np.random.default_rng(1)
        points = rng.random((50, 4))
        sphere = BoundingSphere.of_points(points)
        for point in points:
            assert sphere.contains(point)

    def test_diameter(self):
        sphere = BoundingSphere(np.array([0.0, 0.0]), 2.0)
        assert sphere.diameter == 4.0

    def test_distance_between_disjoint_spheres(self):
        a = BoundingSphere(np.array([0.0, 0.0]), 1.0)
        b = BoundingSphere(np.array([10.0, 0.0]), 2.0)
        assert a.distance(b) == pytest.approx(7.0)

    def test_distance_intersecting_spheres_is_zero(self):
        a = BoundingSphere(np.array([0.0, 0.0]), 1.0)
        b = BoundingSphere(np.array([1.5, 0.0]), 1.0)
        assert a.distance(b) == 0.0

    def test_max_distance(self):
        a = BoundingSphere(np.array([0.0, 0.0]), 1.0)
        b = BoundingSphere(np.array([10.0, 0.0]), 2.0)
        assert a.max_distance(b) == pytest.approx(13.0)

    def test_distance_lower_bounds_point_distances(self):
        rng = np.random.default_rng(2)
        points_a = rng.random((20, 3))
        points_b = rng.random((20, 3)) + 5.0
        a = BoundingSphere.of_points(points_a)
        b = BoundingSphere.of_points(points_b)
        from repro.core.distance import cross_distances

        assert a.distance(b) <= cross_distances(points_a, points_b).min() + 1e-9

    def test_well_separated_far_spheres(self):
        a = BoundingSphere(np.array([0.0, 0.0]), 1.0)
        b = BoundingSphere(np.array([100.0, 0.0]), 1.0)
        assert a.well_separated_from(b, s=2.0)

    def test_not_well_separated_close_spheres(self):
        a = BoundingSphere(np.array([0.0, 0.0]), 1.0)
        b = BoundingSphere(np.array([3.0, 0.0]), 1.0)
        assert not a.well_separated_from(b, s=2.0)

    def test_well_separation_threshold(self):
        # gap = center_gap - 2r must be >= s*r; with r=1, s=2 the threshold
        # center gap is exactly 4.
        a = BoundingSphere(np.array([0.0, 0.0]), 1.0)
        assert a.well_separated_from(BoundingSphere(np.array([4.0, 0.0]), 1.0), s=2.0)
        assert not a.well_separated_from(
            BoundingSphere(np.array([3.999, 0.0]), 1.0), s=2.0
        )

    def test_higher_separation_constant_is_stricter(self):
        a = BoundingSphere(np.array([0.0, 0.0]), 1.0)
        b = BoundingSphere(np.array([5.0, 0.0]), 1.0)
        assert a.well_separated_from(b, s=2.0)
        assert not a.well_separated_from(b, s=8.0)
