"""Deterministic fault injection and the failure paths it drives.

Covers the harness itself (spec grammar, occurrence counting, activation)
and every consumer of an injection point: the WorkerPool death-recovery
ladder (respawn → serial fallback → ``WorkerFailedError``), the memory
budget's spill failure paths, checkpoint truncation, and the compiled
backend's simulated numba outage.  The recovery paths must produce the same
bytes as the happy path — fault tolerance that changes results is a bug.
"""

from __future__ import annotations

import gc
import os
import threading
import warnings

import numpy as np
import pytest

from repro import emst
from repro.core.backend import (
    HAVE_NUMBA,
    BackendFallbackWarning,
    available_backends,
    resolve_backend,
)
from repro.core.budget import MemoryBudget
from repro.core.errors import (
    InvalidParameterError,
    SpillIOError,
    WorkerFailedError,
)
from repro.parallel.pool import (
    WorkerPool,
    WorkerRecoveryWarning,
    get_pool,
    shutdown_pools,
    use_pool_policy,
)
from repro.resilience import (
    Fault,
    FaultPlan,
    InjectedCrashError,
    active_plan,
    fault_check,
    fault_enabled,
    inject_faults,
    parse_fault_spec,
)


class TestFaultSpecGrammar:
    def test_bare_kind_defaults(self):
        plan = parse_fault_spec("kill-worker")
        (fault,) = plan.faults
        assert fault.kind == "kill-worker"
        assert fault.at == 0
        assert fault.times == 1
        assert fault.phase is None
        assert fault.scope == "worker"

    def test_full_option_set(self):
        plan = parse_fault_spec(
            "crash-after-phase:at=3,times=2,phase=mst;kill-worker:scope=any,times=inf"
        )
        crash, kill = plan.faults
        assert (crash.at, crash.times, crash.phase) == (3, 2, "mst")
        assert kill.scope == "any"
        assert kill.times < 0  # inf

    def test_spec_round_trips(self):
        for spec in (
            "kill-worker",
            "kill-worker:at=2",
            "kill-worker:times=inf,scope=any",
            "crash-after-phase:phase=core-distances",
            "spill-os-error:at=1,times=3",
        ):
            (fault,) = parse_fault_spec(spec).faults
            assert parse_fault_spec(fault.spec()).faults[0].spec() == fault.spec()

    def test_whitespace_and_empty_clauses_tolerated(self):
        plan = parse_fault_spec(" kill-worker : at = 1 ; ; spill-os-error ")
        assert [fault.kind for fault in plan.faults] == [
            "kill-worker",
            "spill-os-error",
        ]
        assert plan.faults[0].at == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "not-a-kind",
            "kill-worker:at",
            "kill-worker:bogus=1",
            "kill-worker:at=x",
            "kill-worker:scope=everything",
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises((InvalidParameterError, ValueError)):
            parse_fault_spec(bad)

    def test_fault_and_plan_pass_through(self):
        fault = Fault("no-numba")
        assert parse_fault_spec(fault).faults == [fault]
        plan = FaultPlan([fault])
        assert parse_fault_spec(plan) is plan


class TestFaultMatching:
    def test_at_and_times_window(self):
        plan = parse_fault_spec("kill-worker:at=2,times=2")
        hits = [plan.fire("kill-worker") is not None for _ in range(6)]
        assert hits == [False, False, True, True, False, False]

    def test_times_inf_fires_forever(self):
        plan = parse_fault_spec("kill-worker:times=inf")
        assert all(plan.fire("kill-worker") is not None for _ in range(10))

    def test_phase_filter_counts_only_matching_occurrences(self):
        plan = parse_fault_spec("crash-after-phase:phase=mst,at=1")
        assert plan.fire("crash-after-phase", phase="core-distances") is None
        assert plan.fire("crash-after-phase", phase="mst") is None  # occurrence 0
        assert plan.fire("crash-after-phase", phase="mst") is not None
        assert plan.faults[0].seen == 2  # the core-distances call never counted

    def test_worker_scope_skips_serial_context_without_counting(self):
        plan = parse_fault_spec("kill-worker")
        assert plan.fire("kill-worker", serial=True) is None
        assert plan.faults[0].seen == 0
        assert plan.fire("kill-worker") is not None

    def test_events_record_fired_occurrences(self):
        plan = parse_fault_spec("spill-os-error:times=2")
        plan.fire("spill-os-error", nbytes=100)
        plan.fire("spill-os-error", nbytes=200)
        plan.fire("spill-os-error", nbytes=300)  # beyond times=2
        assert plan.events == [
            ("spill-os-error", {"nbytes": 100}),
            ("spill-os-error", {"nbytes": 200}),
        ]


class TestActivation:
    def test_unarmed_checks_are_noops(self):
        assert active_plan() is None
        assert fault_check("kill-worker") is None
        assert not fault_enabled("no-numba")

    def test_inject_faults_arms_and_restores(self):
        with inject_faults("no-numba") as plan:
            assert active_plan() is plan
            assert fault_enabled("no-numba")
            with inject_faults("kill-worker") as inner:
                assert active_plan() is inner
                assert not fault_enabled("no-numba")
            assert active_plan() is plan
        assert active_plan() is None

    def test_enabled_does_not_consume_occurrences(self):
        with inject_faults("no-numba") as plan:
            for _ in range(5):
                assert fault_enabled("no-numba")
            assert plan.faults[0].seen == 0


def _square(value):
    return value * value


class TestWorkerPoolChaos:
    def test_worker_death_recovers_with_identical_results(self):
        items = list(range(64))
        expected = [_square(item) for item in items]
        with WorkerPool(4) as pool:
            with inject_faults("kill-worker:at=1"):
                assert pool.map(_square, items) == expected
            assert pool.deaths_detected >= 1
            # The dead worker was replaced; the pool stays reusable.
            assert pool.map(_square, items) == expected
            assert pool.healthy

    def test_repeated_deaths_escalate_to_serial_fallback(self):
        items = list(range(32))
        expected = [_square(item) for item in items]
        with WorkerPool(4) as pool:
            with inject_faults("kill-worker:times=inf"):
                with pytest.warns(WorkerRecoveryWarning, match="serially"):
                    assert pool.map(_square, items) == expected
            assert pool.deaths_detected >= 3

    def test_max_retries_zero_escalates_on_first_death(self):
        items = list(range(32))
        expected = [_square(item) for item in items]
        with WorkerPool(4) as pool:
            with inject_faults("kill-worker:at=0"):
                with pytest.warns(WorkerRecoveryWarning, match="max_retries=0"):
                    result = pool.map(_square, items, max_retries=0)
            assert result == expected

    def test_killing_the_serial_fallback_raises_typed_error(self):
        with WorkerPool(4) as pool:
            with inject_faults("kill-worker:times=inf,scope=any"):
                with pytest.warns(WorkerRecoveryWarning):
                    with pytest.raises(WorkerFailedError, match="exhausted"):
                        pool.map(_square, list(range(32)))
            assert not pool.healthy

    def test_task_timeout_stall_poisons_the_pool(self):
        release = threading.Event()
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", WorkerRecoveryWarning)
                pool = WorkerPool(2)
                with pytest.raises(WorkerFailedError, match="task_timeout"):
                    pool.map(
                        lambda _: release.wait(30),
                        list(range(8)),
                        task_timeout=0.2,
                    )
            assert not pool.healthy
        finally:
            release.set()
        pool.shutdown(wait=False)

    def test_policy_validation(self):
        with WorkerPool(2) as pool:
            with pytest.raises(InvalidParameterError, match="max_retries"):
                pool.map(_square, [1, 2], max_retries=-1)
            with pytest.raises(InvalidParameterError, match="task_timeout"):
                pool.map(_square, [1, 2], task_timeout=0)

    def test_use_pool_policy_scopes_the_ambient_default(self):
        items = list(range(32))
        with WorkerPool(4) as pool:
            with use_pool_policy(max_retries=0):
                with inject_faults("kill-worker:at=0"):
                    with pytest.warns(WorkerRecoveryWarning, match="max_retries=0"):
                        pool.map(_square, items)
        with pytest.raises(InvalidParameterError):
            with use_pool_policy(task_timeout=-1):
                pass

    def test_get_pool_replaces_poisoned_cache_entry(self):
        shutdown_pools()
        try:
            pool = get_pool(3)
            with inject_faults("kill-worker:times=inf,scope=any"):
                with pytest.warns(WorkerRecoveryWarning):
                    with pytest.raises(WorkerFailedError):
                        pool.map(_square, list(range(32)))
            assert not pool.healthy
            rebuilt = get_pool(3)
            assert rebuilt is not pool
            assert rebuilt.healthy
            assert rebuilt.map(_square, [1, 2, 3]) == [1, 4, 9]
        finally:
            shutdown_pools()

    def test_task_exceptions_still_propagate_after_a_recovery(self):
        def explode(value):
            if value == 17:
                raise ValueError("boom")
            return value

        with WorkerPool(4) as pool:
            with inject_faults("kill-worker:at=0"):
                with pytest.raises(ValueError, match="boom"):
                    pool.map(explode, list(range(32)))


class TestSpillFaults:
    CAPACITY = 1 << 16  # 512 KB of float64 — past every threshold below

    def _budget(self):
        return MemoryBudget("4M", spill_threshold=1024)

    def test_normal_spill_is_tracked_and_released(self):
        budget = self._budget()
        buffer = budget.allocate(self.CAPACITY, np.float64)
        assert isinstance(buffer, np.memmap)
        assert budget.spilled_buffers == 1
        assert budget.live_spilled_bytes == buffer.nbytes
        del buffer
        gc.collect()
        assert budget.live_spilled_bytes == 0

    def test_spill_os_error_falls_back_to_ram(self):
        budget = self._budget()
        with inject_faults("spill-os-error"):
            with pytest.warns(RuntimeWarning, match="keeping it in RAM"):
                buffer = budget.allocate(self.CAPACITY, np.float64)
        assert not isinstance(buffer, np.memmap)
        assert buffer.shape == (self.CAPACITY,)
        assert budget.spilled_buffers == 0
        assert budget.live_spilled_bytes == 0

    def test_spill_and_ram_failure_raise_typed_error(self):
        budget = self._budget()
        with inject_faults("spill-os-error;spill-ram-fail"):
            with pytest.warns(RuntimeWarning):
                with pytest.raises(SpillIOError, match="RAM fallback failed"):
                    budget.allocate(self.CAPACITY, np.float64)
        assert budget.live_spilled_bytes == 0

    def test_failed_fit_leaks_no_spill_mappings(self, tmp_path):
        # A crash mid-pipeline must not leave live spill memmaps behind:
        # the drivers' finally blocks release the growable containers and
        # each mapping's finalizer returns its bytes.
        def open_fds():
            if not os.path.isdir("/proc/self/fd"):
                return None
            return len(os.listdir("/proc/self/fd"))

        points = np.random.default_rng(7).normal(size=(600, 3))
        budget = MemoryBudget("8M", spill_threshold=1024)
        fds_before = open_fds()
        with inject_faults("crash-after-phase:phase=mst"):
            with pytest.raises(InjectedCrashError):
                emst(
                    points,
                    memory_budget=budget,
                    checkpoint_dir=tmp_path / "ckpt",
                )
        gc.collect()
        assert budget.spilled_buffers > 0, "fault never exercised the spill path"
        assert budget.live_spilled_bytes == 0
        if fds_before is not None:
            assert open_fds() <= fds_before, "failed fit leaked file descriptors"

    def test_refused_spill_leaks_no_descriptors(self):
        if not os.path.isdir("/proc/self/fd"):
            pytest.skip("needs /proc to count descriptors")
        budget = self._budget()
        fds_before = len(os.listdir("/proc/self/fd"))
        with inject_faults("spill-os-error:times=inf"):
            for _ in range(5):
                with pytest.warns(RuntimeWarning):
                    budget.allocate(self.CAPACITY, np.float64)
        assert len(os.listdir("/proc/self/fd")) <= fds_before


class TestNoNumbaFault:
    def test_compiled_backend_reports_unavailable(self):
        with inject_faults("no-numba"):
            assert "numba" not in available_backends()
            with pytest.warns(BackendFallbackWarning, match="falling back"):
                backend = resolve_backend("numba")
            assert backend.name == "numpy"
            with pytest.warns(BackendFallbackWarning):
                lowered = resolve_backend("numba-f32")
            assert lowered.name == "numpy-f32"

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_outage_ends_with_the_fault_scope(self):
        with inject_faults("no-numba"):
            assert not resolve_backend(None if False else "numpy").lowered
            assert "numba" not in available_backends()
        assert "numba" in available_backends()
