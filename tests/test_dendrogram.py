"""Tests for dendrogram construction, reachability plots and cluster extraction."""

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.dendrogram import (
    Dendrogram,
    clusters_at_height,
    cut_num_clusters,
    dbscan_star_labels,
    dendrogram_sequential,
    dendrogram_topdown,
    dendrogram_topdown_simple,
    reachability_from_dendrogram,
    reachability_plot,
    single_linkage,
)
from repro.dendrogram.sequential import tree_vertex_distances
from repro.emst import emst_bruteforce, emst_memogfk
from repro.hdbscan import core_distances, hdbscan_mst_memogfk

BUILDERS = [dendrogram_sequential, dendrogram_topdown, dendrogram_topdown_simple]


def random_tree_edges(n, seed, weight_scale=1.0):
    """A random spanning tree with distinct random weights."""
    rng = np.random.default_rng(seed)
    weights = rng.permutation(n - 1) * weight_scale + rng.random(n - 1) * 0.001
    return [
        (int(rng.integers(0, i)), i, float(weights[i - 1])) for i in range(1, n)
    ]


class TestStructure:
    def test_single_point(self):
        dendrogram = Dendrogram(1)
        assert dendrogram.is_valid()
        assert dendrogram.num_internal == 0

    def test_add_internal_assigns_ids(self):
        dendrogram = Dendrogram(3)
        first = dendrogram.add_internal(0, 1, 1.0, (0, 1))
        second = dendrogram.add_internal(first, 2, 2.0, (1, 2))
        assert (first, second) == (3, 4)
        dendrogram.set_root(second)
        assert dendrogram.is_valid()

    def test_node_size(self):
        dendrogram = Dendrogram(3)
        first = dendrogram.add_internal(0, 1, 1.0, (0, 1))
        second = dendrogram.add_internal(first, 2, 2.0, (1, 2))
        assert dendrogram.node_size(0) == 1
        assert dendrogram.node_size(first) == 2
        assert dendrogram.node_size(second) == 3

    def test_children_and_height_accessors(self):
        dendrogram = Dendrogram(2)
        node = dendrogram.add_internal(0, 1, 5.0, (0, 1))
        assert dendrogram.children(node) == (0, 1)
        assert dendrogram.height(node) == 5.0
        assert dendrogram.edge(node) == (0, 1)

    def test_leaf_queried_as_internal_raises(self):
        dendrogram = Dendrogram(2)
        with pytest.raises(InvalidParameterError):
            dendrogram.height(0)

    def test_invalid_when_heights_not_monotone(self):
        dendrogram = Dendrogram(3)
        first = dendrogram.add_internal(0, 1, 5.0, (0, 1))
        second = dendrogram.add_internal(first, 2, 1.0, (1, 2))  # lower than child
        dendrogram.set_root(second)
        assert not dendrogram.is_valid()

    def test_linkage_matrix_shape(self):
        edges = random_tree_edges(20, seed=0)
        dendrogram = dendrogram_sequential(edges, 20)
        matrix = dendrogram.to_linkage_matrix()
        assert matrix.shape == (19, 4)
        assert np.all(np.diff(matrix[:, 2]) >= -1e-12)
        assert matrix[-1, 3] == 20

    def test_scipy_accepts_linkage_matrix(self):
        from scipy.cluster.hierarchy import fcluster

        edges = random_tree_edges(30, seed=1)
        matrix = dendrogram_sequential(edges, 30).to_linkage_matrix()
        labels = fcluster(matrix, t=4, criterion="maxclust")
        assert len(set(labels.tolist())) <= 4


class TestVertexDistances:
    def test_path_graph(self):
        edges = [(i, i + 1, 1.0) for i in range(4)]
        distances = tree_vertex_distances(edges, 5, 0)
        assert list(distances) == [0, 1, 2, 3, 4]

    def test_star_graph(self):
        edges = [(0, i, 1.0) for i in range(1, 6)]
        distances = tree_vertex_distances(edges, 6, 3)
        assert distances[3] == 0
        assert distances[0] == 1
        assert all(distances[i] == 2 for i in (1, 2, 4, 5))

    def test_matches_bfs_reference_on_random_trees(self):
        # Reference: textbook adjacency-list BFS.
        for seed in range(3):
            n = 200
            edges = random_tree_edges(n, seed)
            adjacency = [[] for _ in range(n)]
            for u, v, _ in edges:
                adjacency[u].append(v)
                adjacency[v].append(u)
            expected = np.full(n, -1)
            expected[0] = 0
            frontier = [0]
            while frontier:
                nxt = []
                for vertex in frontier:
                    for neighbor in adjacency[vertex]:
                        if expected[neighbor] < 0:
                            expected[neighbor] = expected[vertex] + 1
                            nxt.append(neighbor)
                frontier = nxt
            assert np.array_equal(tree_vertex_distances(edges, n, 0), expected)

    def test_accepts_array_input(self):
        edges = [(i, i + 1, 1.0) for i in range(4)]
        u = np.array([e[0] for e in edges])
        v = np.array([e[1] for e in edges])
        w = np.array([e[2] for e in edges])
        assert np.array_equal(
            tree_vertex_distances((u, v, w), 5, 2),
            tree_vertex_distances(edges, 5, 2),
        )


class TestEdgeInputForms:
    @pytest.mark.parametrize("builder", BUILDERS, ids=lambda f: f.__name__)
    def test_edgelist_and_tuples_build_identical_dendrograms(self, builder):
        from repro.mst import EdgeList

        n = 60
        tuple_edges = random_tree_edges(n, seed=20)
        edge_list = EdgeList(tuple_edges)
        from_tuples = builder(tuple_edges, n)
        from_edgelist = builder(edge_list, n)
        assert np.array_equal(
            from_tuples.to_linkage_matrix(), from_edgelist.to_linkage_matrix()
        )
        assert from_tuples.root == from_edgelist.root


class TestConstruction:
    @pytest.mark.parametrize("builder", BUILDERS, ids=lambda f: f.__name__)
    def test_valid_on_random_trees(self, builder):
        for seed in range(3):
            n = 60
            edges = random_tree_edges(n, seed)
            dendrogram = builder(edges, n)
            assert dendrogram.is_valid()

    @pytest.mark.parametrize("builder", BUILDERS, ids=lambda f: f.__name__)
    def test_heights_are_edge_weights(self, builder):
        n = 40
        edges = random_tree_edges(n, seed=5)
        dendrogram = builder(edges, n)
        assert sorted(dendrogram.heights().tolist()) == sorted(
            edge[2] for edge in edges
        )

    @pytest.mark.parametrize("builder", BUILDERS, ids=lambda f: f.__name__)
    def test_root_height_is_max_weight(self, builder):
        n = 30
        edges = random_tree_edges(n, seed=6)
        dendrogram = builder(edges, n)
        assert dendrogram.height(dendrogram.root) == pytest.approx(
            max(edge[2] for edge in edges)
        )

    def test_all_builders_agree_on_reachability(self):
        n = 80
        edges = random_tree_edges(n, seed=7)
        reference = None
        for builder in BUILDERS:
            order, reach = reachability_from_dendrogram(builder(edges, n, start=0))
            if reference is None:
                reference = (order, reach)
            else:
                assert np.array_equal(order, reference[0])
                assert np.allclose(reach[1:], reference[1][1:])

    @pytest.mark.parametrize("builder", BUILDERS, ids=lambda f: f.__name__)
    def test_wrong_edge_count_rejected(self, builder):
        with pytest.raises(InvalidParameterError):
            builder([(0, 1, 1.0)], 3)

    @pytest.mark.parametrize("builder", BUILDERS, ids=lambda f: f.__name__)
    def test_two_points(self, builder):
        dendrogram = builder([(0, 1, 3.0)], 2)
        assert dendrogram.num_internal == 1
        assert dendrogram.height(dendrogram.root) == 3.0

    def test_topdown_heavy_fraction_validation(self):
        with pytest.raises(InvalidParameterError):
            dendrogram_topdown([(0, 1, 1.0)], 2, heavy_fraction=0.0)

    @pytest.mark.parametrize("heavy_fraction", [0.05, 0.1, 0.3, 0.5, 1.0])
    def test_topdown_heavy_fraction_does_not_change_result(self, heavy_fraction):
        n = 70
        edges = random_tree_edges(n, seed=9)
        reference = reachability_from_dendrogram(dendrogram_sequential(edges, n))
        result = reachability_from_dendrogram(
            dendrogram_topdown(edges, n, heavy_fraction=heavy_fraction)
        )
        assert np.array_equal(result[0], reference[0])

    @pytest.mark.parametrize("base_size", [1, 4, 16, 128])
    def test_topdown_base_size_does_not_change_result(self, base_size):
        n = 50
        edges = random_tree_edges(n, seed=10)
        reference = reachability_from_dendrogram(dendrogram_sequential(edges, n))
        result = reachability_from_dendrogram(
            dendrogram_topdown(edges, n, base_size=base_size)
        )
        assert np.array_equal(result[0], reference[0])

    def test_path_with_increasing_weights(self):
        # Worst case for the warm-up algorithm: a path with sorted weights.
        n = 40
        edges = [(i, i + 1, float(i + 1)) for i in range(n - 1)]
        for builder in BUILDERS:
            dendrogram = builder(edges, n)
            assert dendrogram.is_valid()
            order, _ = reachability_from_dendrogram(dendrogram)
            assert list(order) == list(range(n))


class TestReachability:
    @pytest.mark.parametrize("start", [0, 7, 33])
    def test_matches_prim_from_any_start(self, start):
        points = np.random.default_rng(3).random((60, 2))
        tree = emst_bruteforce(points)
        edges = list(tree.edges)
        dendrogram = dendrogram_topdown(edges, 60, start=start)
        order, reach = reachability_from_dendrogram(dendrogram)
        order_ref, reach_ref = reachability_plot(edges, 60, start=start)
        assert order[0] == start
        assert np.array_equal(order, order_ref)
        assert np.allclose(reach[1:], reach_ref[1:])

    def test_first_value_is_infinite(self):
        edges = random_tree_edges(10, seed=11)
        _, reach = reachability_from_dendrogram(dendrogram_sequential(edges, 10))
        assert np.isinf(reach[0])

    def test_on_hdbscan_mst(self, clustered_points):
        points, _ = clustered_points
        mst = hdbscan_mst_memogfk(points, 5)
        edges = list(mst.edges)
        order, reach = reachability_plot(edges, len(points), start=0)
        # The reachability plot of two well-separated blobs has exactly one
        # large jump (crossing between the blobs).
        finite = reach[1:]
        assert np.sum(finite > 0.5) == 1

    def test_reachability_plot_rejects_incomplete_tree(self):
        with pytest.raises(InvalidParameterError):
            reachability_plot([(0, 1, 1.0)], 3, start=0)


class TestExtraction:
    def test_clusters_at_height_zero_are_singletons(self):
        edges = random_tree_edges(12, seed=12)
        dendrogram = dendrogram_sequential(edges, 12)
        labels = clusters_at_height(dendrogram, -1.0)
        assert len(set(labels.tolist())) == 12

    def test_clusters_at_max_height_single_cluster(self):
        edges = random_tree_edges(12, seed=13)
        dendrogram = dendrogram_sequential(edges, 12)
        labels = clusters_at_height(dendrogram, max(e[2] for e in edges))
        assert set(labels.tolist()) == {0}

    def test_cluster_count_monotone_in_epsilon(self):
        edges = random_tree_edges(40, seed=14)
        dendrogram = dendrogram_sequential(edges, 40)
        counts = [
            len(set(clusters_at_height(dendrogram, eps).tolist()))
            for eps in np.linspace(0.0, 40.0, 9)
        ]
        assert all(b <= a for a, b in zip(counts, counts[1:]))

    def test_cut_matches_component_structure(self):
        # Cutting the dendrogram at eps must equal connected components of the
        # tree restricted to edges <= eps.
        from repro.parallel import UnionFind

        n = 50
        edges = random_tree_edges(n, seed=15)
        dendrogram = dendrogram_sequential(edges, n)
        for eps in (5.0, 20.0, 35.0):
            labels = clusters_at_height(dendrogram, eps)
            union_find = UnionFind(n)
            for u, v, w in edges:
                if w <= eps:
                    union_find.union(u, v)
            components = union_find.component_labels()
            # Same partition: points share a label iff they share a component.
            for i in range(0, n, 7):
                for j in range(0, n, 11):
                    assert (labels[i] == labels[j]) == (components[i] == components[j])

    def test_cut_num_clusters_exact_counts(self):
        edges = random_tree_edges(30, seed=16)
        dendrogram = dendrogram_sequential(edges, 30)
        for k in (1, 2, 5, 10, 30):
            labels = cut_num_clusters(dendrogram, k)
            assert len(set(labels.tolist())) == k

    def test_cut_num_clusters_clamped(self):
        edges = random_tree_edges(10, seed=17)
        dendrogram = dendrogram_sequential(edges, 10)
        labels = cut_num_clusters(dendrogram, 50)
        assert len(set(labels.tolist())) == 10

    def test_cut_num_clusters_invalid(self):
        dendrogram = dendrogram_sequential([(0, 1, 1.0)], 2)
        with pytest.raises(InvalidParameterError):
            cut_num_clusters(dendrogram, 0)

    def test_dbscan_star_labels_consistent_with_bruteforce_dbscan(self):
        # Reference DBSCAN*: connected components of the eps-mutual-reachability
        # graph restricted to core points.
        from repro.hdbscan import mutual_reachability_matrix
        from repro.parallel import UnionFind

        points = np.random.default_rng(18).random((80, 2))
        min_pts, eps = 5, 0.25
        core = core_distances(points, min_pts)
        mst = hdbscan_mst_memogfk(points, min_pts, core_dists=core)
        labels = dbscan_star_labels(mst.edges, core, eps)

        matrix = mutual_reachability_matrix(points, core)
        is_core = core <= eps
        union_find = UnionFind(80)
        for i in range(80):
            for j in range(i + 1, 80):
                if is_core[i] and is_core[j] and matrix[i, j] <= eps:
                    union_find.union(i, j)
        reference = union_find.component_labels()
        for i in range(80):
            for j in range(80):
                if is_core[i] and is_core[j]:
                    assert (labels[i] == labels[j]) == (reference[i] == reference[j])
                elif not is_core[i]:
                    assert labels[i] == -1


class TestSingleLinkage:
    def test_result_contains_emst_and_dendrogram(self, small_points_2d):
        result = single_linkage(small_points_2d)
        assert result.emst.is_spanning_tree()
        assert result.dendrogram.is_valid()

    def test_labels_k(self, clustered_points):
        points, truth = clustered_points
        result = single_linkage(points)
        labels = result.labels_k(2)
        assert len(set(labels.tolist())) == 2
        # Single linkage separates the two far-apart blobs perfectly.
        assert len(set(labels[truth == 0].tolist())) == 1
        assert len(set(labels[truth == 1].tolist())) == 1

    def test_labels_at_epsilon(self, clustered_points):
        points, _ = clustered_points
        result = single_linkage(points)
        labels = result.labels_at(0.3)
        assert len(set(labels.tolist())) == 2

    def test_method_forwarding(self, small_points_2d):
        result = single_linkage(small_points_2d, method="naive")
        expected = emst_memogfk(small_points_2d).total_weight
        assert result.emst.total_weight == pytest.approx(expected)

    def test_stats_contain_timings(self, small_points_2d):
        result = single_linkage(small_points_2d)
        assert "time_emst" in result.stats
        assert "time_dendrogram" in result.stats
