"""Tests for every EMST algorithm variant and the public API."""

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.emst import (
    EMST_METHODS,
    emst,
    emst_bruteforce,
    emst_delaunay,
    emst_dualtree_boruvka,
    emst_gfk,
    emst_memogfk,
    emst_naive,
)

FAST_METHODS = [emst_naive, emst_gfk, emst_memogfk, emst_dualtree_boruvka]


@pytest.fixture(scope="module")
def reference_2d(small_points_2d=None):
    points = np.random.default_rng(21).random((100, 2))
    return points, emst_bruteforce(points)


class TestAgainstBruteforce:
    @pytest.mark.parametrize("algorithm", FAST_METHODS, ids=lambda f: f.__name__)
    @pytest.mark.parametrize("dimensions", [1, 2, 3, 5])
    def test_total_weight_matches(self, algorithm, dimensions):
        points = np.random.default_rng(dimensions).random((70, dimensions))
        expected = emst_bruteforce(points).total_weight
        result = algorithm(points)
        assert result.total_weight == pytest.approx(expected, rel=1e-9)
        assert result.is_spanning_tree()

    def test_delaunay_matches_in_2d(self):
        points = np.random.default_rng(9).random((150, 2))
        expected = emst_bruteforce(points).total_weight
        result = emst_delaunay(points)
        assert result.total_weight == pytest.approx(expected, rel=1e-9)
        assert result.is_spanning_tree()

    @pytest.mark.parametrize("algorithm", FAST_METHODS, ids=lambda f: f.__name__)
    def test_clustered_data(self, algorithm, clustered_points):
        points, _ = clustered_points
        expected = emst_bruteforce(points).total_weight
        assert algorithm(points).total_weight == pytest.approx(expected, rel=1e-9)

    @pytest.mark.parametrize("algorithm", FAST_METHODS, ids=lambda f: f.__name__)
    def test_skewed_varden_data(self, algorithm, varden_points):
        subset = varden_points[:120]
        expected = emst_bruteforce(subset).total_weight
        assert algorithm(subset).total_weight == pytest.approx(expected, rel=1e-9)


class TestEdgeCases:
    @pytest.mark.parametrize(
        "algorithm",
        FAST_METHODS + [emst_bruteforce],
        ids=lambda f: f.__name__,
    )
    def test_single_point(self, algorithm):
        result = algorithm(np.array([[1.0, 2.0]]))
        assert result.num_edges == 0
        assert result.is_spanning_tree()

    @pytest.mark.parametrize("algorithm", FAST_METHODS, ids=lambda f: f.__name__)
    def test_two_points(self, algorithm):
        result = algorithm(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert result.num_edges == 1
        assert result.total_weight == pytest.approx(5.0)

    @pytest.mark.parametrize("algorithm", FAST_METHODS, ids=lambda f: f.__name__)
    def test_collinear_points(self, algorithm):
        points = np.column_stack([np.arange(20.0), np.zeros(20)])
        result = algorithm(points)
        assert result.total_weight == pytest.approx(19.0)

    @pytest.mark.parametrize("algorithm", FAST_METHODS, ids=lambda f: f.__name__)
    def test_duplicate_points(self, algorithm):
        points = np.vstack([np.zeros((4, 2)), np.ones((4, 2)), [[0.5, 0.5]]])
        result = algorithm(points)
        expected = emst_bruteforce(points).total_weight
        assert result.total_weight == pytest.approx(expected)
        assert result.is_spanning_tree()

    def test_grid_points_known_weight(self):
        # A 5x5 unit grid has an MST of total weight 24 (24 unit edges).
        xs, ys = np.meshgrid(np.arange(5.0), np.arange(5.0))
        points = np.column_stack([xs.ravel(), ys.ravel()])
        for algorithm in FAST_METHODS:
            assert algorithm(points).total_weight == pytest.approx(24.0)


class TestStatistics:
    def test_naive_reports_wspd_pairs(self, small_points_2d):
        result = emst_naive(small_points_2d)
        assert result.stats["wspd_pairs"] > 0
        assert result.stats["bccp_calls"] == result.stats["wspd_pairs"]

    def test_gfk_computes_fewer_bccps_than_naive(self, varden_points):
        subset = varden_points[:200]
        naive = emst_naive(subset)
        gfk = emst_gfk(subset)
        assert gfk.stats["bccp_calls"] <= naive.stats["bccp_calls"]

    def test_memogfk_materializes_fewer_pairs_than_naive(self, varden_points):
        subset = varden_points[:200]
        naive = emst_naive(subset)
        memo = emst_memogfk(subset)
        assert memo.stats["max_pairs_materialized"] < naive.stats["pairs_materialized"]

    def test_memogfk_round_count_logarithmic(self):
        points = np.random.default_rng(0).random((256, 2))
        result = emst_memogfk(points)
        assert result.stats["rounds"] <= 2 * int(np.log2(256)) + 2

    def test_gfk_beta_increment_mode(self):
        points = np.random.default_rng(1).random((60, 2))
        doubling = emst_gfk(points, beta_growth="double")
        incrementing = emst_gfk(points, beta_growth="increment")
        assert incrementing.total_weight == pytest.approx(doubling.total_weight)
        assert incrementing.stats["rounds"] >= doubling.stats["rounds"]

    def test_gfk_invalid_beta_growth(self):
        with pytest.raises(ValueError):
            emst_gfk(np.zeros((3, 2)), beta_growth="bogus")

    def test_phase_timings_present(self, small_points_2d):
        result = emst_memogfk(small_points_2d)
        assert any(key.startswith("time_") for key in result.stats)


class TestPublicAPI:
    def test_default_method_is_memogfk(self, small_points_2d):
        result = emst(small_points_2d)
        assert result.method == "memogfk"

    @pytest.mark.parametrize("method", sorted(EMST_METHODS))
    def test_all_registered_methods_run(self, method):
        points = np.random.default_rng(5).random((50, 2))
        result = emst(points, method=method)
        assert result.num_edges == 49

    def test_unknown_method_rejected(self, small_points_2d):
        with pytest.raises(InvalidParameterError):
            emst(small_points_2d, method="nope")

    def test_delaunay_rejects_3d(self, small_points_3d):
        with pytest.raises(InvalidParameterError):
            emst(small_points_3d, method="delaunay")

    def test_kwargs_forwarded(self, small_points_2d):
        result = emst(small_points_2d, method="dualtree-boruvka", leaf_size=4)
        assert result.is_spanning_tree()

    def test_wspd_methods_reject_multipoint_leaves(self, small_points_2d):
        with pytest.raises(InvalidParameterError):
            emst(small_points_2d, method="naive", leaf_size=4)

    def test_result_repr(self, small_points_2d):
        result = emst(small_points_2d)
        assert "memogfk" in repr(result)

    def test_edge_arrays_accessor(self, small_points_2d):
        endpoints, weights = emst(small_points_2d).edge_arrays()
        assert endpoints.shape == (len(small_points_2d) - 1, 2)
        assert weights.shape == (len(small_points_2d) - 1,)

    def test_threaded_naive_matches(self, small_points_2d):
        sequential = emst_naive(small_points_2d)
        threaded = emst_naive(small_points_2d, num_threads=4)
        assert threaded.total_weight == pytest.approx(sequential.total_weight)
