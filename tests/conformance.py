"""Cross-method conformance helpers shared by the test suite.

One place for the "every exact method must produce the same tree" logic the
suite previously re-implemented as ad-hoc loops per PR: canonical edge-set
extraction, tree-agreement assertions, the (1+ε) weight-bound assertion for
the approximate methods, and the lists that define the conformance matrix
(methods × metrics × thread counts × dtypes × kernel backends).

Adding a new EMST method means it appears in ``EXACT_EMST_METHODS``
automatically (it is derived from the live registry) and the whole matrix in
``tests/test_conformance.py`` applies to it; a method with restricted support
(like the 2D-Euclidean-only Delaunay variant) only needs a clause in
:func:`emst_method_supports`.  Adding a metric means extending
``CONFORMANCE_METRICS``; adding a kernel backend means extending
``CONFORMANCE_BACKENDS`` (exact backends are held to byte-identity against
the default engine, lowered float32-scoring backends to bounded agreement —
the per-backend analogue of the exact/approximate method split).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import pytest

from repro.core.backend import BACKENDS
from repro.emst.api import EMST_METHODS
from repro.emst.result import EMSTResult
from repro.hdbscan.api import HDBSCAN_METHODS

#: Methods whose output is contractually approximate: they assert the
#: (1+ε) weight bound instead of edge-set agreement.
APPROX_EMST_METHODS: Tuple[str, ...] = ("wspd-approx",)
APPROX_HDBSCAN_METHODS: Tuple[str, ...] = ("wspd-approx", "optics-approx")

#: Exact methods, derived from the live registries so a newly registered
#: method is conformance-tested without touching this module.
EXACT_EMST_METHODS: Tuple[str, ...] = tuple(
    sorted(set(EMST_METHODS) - set(APPROX_EMST_METHODS))
)
EXACT_HDBSCAN_METHODS: Tuple[str, ...] = tuple(
    sorted(set(HDBSCAN_METHODS) - set(APPROX_HDBSCAN_METHODS))
)

#: The metric axis of the matrix (one representative of every metric family).
CONFORMANCE_METRICS: Tuple[str, ...] = (
    "euclidean",
    "manhattan",
    "chebyshev",
    "minkowski:3",
)

#: The thread-count axis (1 = inline, 2 = sharded onto the worker pool).
CONFORMANCE_THREAD_COUNTS: Tuple[int, ...] = (1, 2)

#: The input-dtype axis: inputs are handed to the library in this dtype (the
#: boundary coerces to float64, so both must yield the float64-cast tree).
CONFORMANCE_DTYPES: Tuple[str, ...] = ("float64", "float32")

#: ε values the approximate methods are exercised at.
CONFORMANCE_EPSILONS: Tuple[float, ...] = (0.01, 0.1, 0.5, 1.0)

#: The kernel-backend axis: the default engine, the compiled engine
#: (skipped when numba is not installed) and the float32-lowered engine.
#: ``numba-f32`` is covered by the registry/unit tests; the full matrix runs
#: the one representative of each contract class per backend family.
CONFORMANCE_BACKENDS: Tuple[str, ...] = ("numpy", "numba", "numpy-f32")

#: Thread counts the backend axis is exercised at (the compiled kernels run
#: nogil inside the worker pool, so sharding must not change results).
CONFORMANCE_BACKEND_THREAD_COUNTS: Tuple[int, ...] = (1, 2, 4)

#: The memory-budget axis: unbudgeted, a budget comfortably above every
#: default tile, and one byte — far below any tile floor, so every kernel
#: clamps at its minimum tile.  All three must yield byte-identical results
#: (the budget may change only tile/chunk sizes, never outputs).
CONFORMANCE_MEMORY_BUDGETS: Tuple = (None, "16M", 1)


def backend_is_exact(backend: str) -> bool:
    """Whether a backend is held to byte-identity (vs bounded agreement)."""
    return BACKENDS[backend].exact


def skip_unless_backend_available(backend: str) -> None:
    """``pytest.skip`` a backend cell that cannot run in this environment."""
    if not BACKENDS[backend].available():
        pytest.skip(f"backend {backend} is unavailable (numba not installed)")


def emst_method_supports(method: str, metric: str, dimensions: int) -> bool:
    """Whether an EMST method supports a (metric, dimensionality) cell."""
    if method == "delaunay":
        return metric == "euclidean" and dimensions == 2
    return True


def skip_unless_supported(method: str, metric: str, dimensions: int) -> None:
    """``pytest.skip`` a matrix cell the method documentedly cannot serve."""
    if not emst_method_supports(method, metric, dimensions):
        pytest.skip(f"{method} does not support metric={metric}, d={dimensions}")


def canonical_edges(result: EMSTResult) -> np.ndarray:
    """The tree's edge set as a lexicographically sorted ``(m, 2)`` array.

    Endpoints are ordered within each edge and the rows are sorted, so two
    trees over the same points are equal iff these arrays are equal —
    independent of edge order, edge direction, or which algorithm produced
    them.
    """
    u, v, _ = result.edges.as_arrays()
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    edges = np.column_stack([lo, hi])
    order = np.lexsort((hi, lo))
    return edges[order]


def assert_same_tree(
    result: EMSTResult, reference: EMSTResult, *, rel: float = 1e-9
) -> None:
    """Assert two exact results describe the identical spanning tree.

    Total weights must agree to relative tolerance ``rel`` and the canonical
    edge sets must be identical (the conformance datasets are in generic
    position, so the MST is unique and edge sets are comparable).
    """
    assert result.num_edges == reference.num_edges
    assert result.total_weight == pytest.approx(reference.total_weight, rel=rel)
    assert np.array_equal(canonical_edges(result), canonical_edges(reference)), (
        f"{result.method} and {reference.method} returned different edge sets"
    )


def assert_byte_identical(result: EMSTResult, reference: EMSTResult) -> None:
    """Assert two results are the same tree byte for byte.

    Stronger than :func:`assert_same_tree`: endpoint arrays and weight arrays
    must be *equal*, in order — the contract exact (float64-scoring) backends
    are held to against the default engine.
    """
    u_r, v_r, w_r = result.edges.as_arrays()
    u_ref, v_ref, w_ref = reference.edges.as_arrays()
    assert np.array_equal(u_r, u_ref), "edge endpoints differ"
    assert np.array_equal(v_r, v_ref), "edge endpoints differ"
    assert np.array_equal(w_r, w_ref), "edge weights differ"


def assert_bounded_agreement(
    result: EMSTResult, reference: EMSTResult, *, rel: float = 1e-5
) -> None:
    """Assert the lowered-backend contract against an exact reference.

    The result must be a spanning tree of the same size whose total weight
    and sorted edge-weight profile agree with the exact tree to relative
    tolerance ``rel`` — float32 scoring may swap near-tied candidate edges,
    but every surviving weight is re-evaluated in exact float64, so any
    discrepancy is bounded by the float32 rounding of the *selection*.
    """
    assert result.num_edges == reference.num_edges
    assert result.is_spanning_tree()
    assert result.total_weight == pytest.approx(reference.total_weight, rel=rel)
    w_res = np.sort(result.edges.as_arrays()[2])
    w_ref = np.sort(reference.edges.as_arrays()[2])
    np.testing.assert_allclose(w_res, w_ref, rtol=rel, atol=rel)


def assert_weight_bound(
    result: EMSTResult,
    exact_weight: float,
    epsilon: float,
    *,
    num_points: Optional[int] = None,
) -> None:
    """Assert the approximate-method contract.

    The result must be a spanning tree whose total weight lies in
    ``[exact, (1 + epsilon) * exact]`` (with a hair of floating-point slack
    on both sides).
    """
    if num_points is not None:
        assert result.num_points == num_points
    assert result.is_spanning_tree()
    weight = result.total_weight
    slack = 1e-9 * max(exact_weight, 1.0)
    assert weight >= exact_weight - slack, (
        f"approximate weight {weight} below exact {exact_weight}"
    )
    bound = (1.0 + epsilon) * exact_weight
    assert weight <= bound + slack, (
        f"approximate weight {weight} exceeds (1+{epsilon}) * exact = {bound}"
    )
