"""Tests for the parallel primitives and the work-depth tracker."""

import numpy as np
import pytest

from repro.parallel import (
    WorkDepthTracker,
    WriteMinCell,
    parallel_filter,
    parallel_map,
    parallel_max_index,
    parallel_min_index,
    parallel_split,
    prefix_sum,
    semisort,
    simulated_speedups,
    simulated_time,
    use_tracker,
    write_min,
)
from repro.parallel.hashtable import ParallelHashTable


class TestPrefixSum:
    def test_exclusive_prefix(self):
        prefix, total = prefix_sum([1, 2, 3, 4])
        assert list(prefix) == [0, 1, 3, 6]
        assert total == 10

    def test_empty_sequence(self):
        prefix, total = prefix_sum([])
        assert len(prefix) == 0
        assert total == 0

    def test_single_element(self):
        prefix, total = prefix_sum([7])
        assert list(prefix) == [0]
        assert total == 7

    def test_floats(self):
        prefix, total = prefix_sum([0.5, 0.25, 0.25])
        assert total == pytest.approx(1.0)
        assert prefix[2] == pytest.approx(0.75)

    def test_matches_numpy_cumsum(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 100, size=50)
        prefix, total = prefix_sum(values)
        assert total == values.sum()
        assert np.array_equal(prefix[1:], np.cumsum(values)[:-1])


class TestFilterAndSplit:
    def test_filter_keeps_matching(self):
        assert parallel_filter([1, 2, 3, 4, 5], lambda x: x % 2 == 0) == [2, 4]

    def test_filter_preserves_order(self):
        items = [5, 3, 8, 1, 9]
        assert parallel_filter(items, lambda x: x > 2) == [5, 3, 8, 9]

    def test_filter_empty(self):
        assert parallel_filter([], lambda x: True) == []

    def test_split_partitions(self):
        true_items, false_items = parallel_split(range(6), lambda x: x < 3)
        assert true_items == [0, 1, 2]
        assert false_items == [3, 4, 5]

    def test_split_all_true(self):
        true_items, false_items = parallel_split([1, 2], lambda x: True)
        assert true_items == [1, 2]
        assert false_items == []


class TestWriteMin:
    def test_cell_keeps_minimum(self):
        cell = WriteMinCell()
        cell.write(5.0, "a")
        cell.write(3.0, "b")
        cell.write(9.0, "c")
        assert cell.value == 3.0
        assert cell.payload == "b"

    def test_cell_write_returns_success(self):
        cell = WriteMinCell(10.0)
        assert cell.write(5.0)
        assert not cell.write(7.0)

    def test_array_write_min(self):
        cells = np.full(3, np.inf)
        assert write_min(cells, 1, 4.0)
        assert not write_min(cells, 1, 6.0)
        assert cells[1] == 4.0


class TestReductions:
    def test_min_index(self):
        assert parallel_min_index([5.0, 1.0, 3.0]) == 1

    def test_max_index(self):
        assert parallel_max_index([5.0, 1.0, 9.0, 3.0]) == 2

    def test_min_index_empty_raises(self):
        with pytest.raises(ValueError):
            parallel_min_index([])


class TestSemisort:
    def test_groups_by_key(self):
        groups = semisort([1, 2, 3, 4, 5, 6], key=lambda x: x % 3)
        assert sorted(groups[0]) == [3, 6]
        assert sorted(groups[1]) == [1, 4]
        assert sorted(groups[2]) == [2, 5]

    def test_preserves_order_within_group(self):
        groups = semisort(["bb", "a", "cc", "d"], key=len)
        assert groups[2] == ["bb", "cc"]
        assert groups[1] == ["a", "d"]

    def test_empty_input(self):
        assert semisort([], key=lambda x: x) == {}


class TestParallelHashTable:
    def test_insert_find(self):
        table = ParallelHashTable()
        table.insert("x", 1)
        assert table.find("x") == 1
        assert table.find("y") is None
        assert table.find("y", default=0) == 0

    def test_delete(self):
        table = ParallelHashTable()
        table.insert("x", 1)
        assert table.delete("x")
        assert not table.delete("x")
        assert len(table) == 0

    def test_contains_and_items(self):
        table = ParallelHashTable()
        table.insert(1, "a")
        table.insert(2, "b")
        assert 1 in table
        assert dict(table.items()) == {1: "a", 2: "b"}


class TestParallelMap:
    def test_sequential_path(self):
        assert parallel_map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_threaded_path_same_result(self):
        items = list(range(50))
        assert parallel_map(lambda x: x * x, items, num_threads=4) == [
            x * x for x in items
        ]

    def test_empty_items(self):
        assert parallel_map(lambda x: x, [], num_threads=4) == []


class TestTrackerAndBrent:
    def test_sequential_charging(self):
        tracker = WorkDepthTracker()
        tracker.add(10, 2)
        tracker.add(5, 3)
        assert tracker.work == 15
        assert tracker.depth == 5

    def test_parallel_scope_takes_max_depth(self):
        tracker = WorkDepthTracker()
        with tracker.parallel():
            with tracker.task():
                tracker.add(10, 4)
            with tracker.task():
                tracker.add(20, 7)
        assert tracker.work == 30
        assert tracker.depth == 7

    def test_nested_scopes(self):
        tracker = WorkDepthTracker()
        with tracker.sequential():
            with tracker.parallel():
                with tracker.task():
                    tracker.add(10, 5)
                with tracker.task():
                    tracker.add(10, 5)
            tracker.add(1, 1)
        assert tracker.work == 21
        assert tracker.depth == 6

    def test_phase_accounting(self):
        tracker = WorkDepthTracker()
        tracker.add(10, 1, phase="wspd")
        tracker.add(3, 1, phase="wspd")
        tracker.add(2, 1, phase="kruskal")
        assert tracker.phase_work["wspd"] == 13
        assert tracker.phase_work["kruskal"] == 2

    def test_ambient_tracker_collects_primitive_costs(self):
        tracker = WorkDepthTracker()
        with use_tracker(tracker):
            prefix_sum(list(range(100)))
        assert tracker.work >= 100

    def test_no_tracker_is_silent(self):
        # Charging with no ambient tracker must not raise or accumulate.
        prefix_sum([1, 2, 3])

    def test_reset(self):
        tracker = WorkDepthTracker()
        tracker.add(5, 5)
        tracker.reset()
        assert tracker.work == 0
        assert tracker.depth == 0

    def test_simulated_time_brent_bound(self):
        assert simulated_time(100, 10, 1) == pytest.approx(110)
        assert simulated_time(100, 10, 10) == pytest.approx(20)

    def test_simulated_time_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            simulated_time(10, 1, 0)

    def test_simulated_speedups_monotone(self):
        speedups = simulated_speedups(1_000_000, 100, [1, 2, 4, 8, 16])
        assert speedups[0] == pytest.approx(1.0)
        assert all(b >= a for a, b in zip(speedups, speedups[1:]))

    def test_speedups_bounded_by_processor_count(self):
        speedups = simulated_speedups(1_000_000, 100, [1, 4, 16])
        assert speedups[1] <= 4.0 + 1e-9
        assert speedups[2] <= 16.0 + 1e-9

    def test_hyperthread_last_gives_extra_speedup(self):
        plain = simulated_speedups(1_000_000, 1, [1, 48])
        hyper = simulated_speedups(1_000_000, 1, [1, 48], hyperthread_last=True)
        assert hyper[-1] > plain[-1]
