"""Tests for the spatial-median kd-tree."""

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError, NotComputedError
from repro.spatial import KDTree


class TestConstruction:
    def test_leaf_size_one_gives_singleton_leaves(self, small_points_2d):
        tree = KDTree(small_points_2d, leaf_size=1)
        assert all(leaf.size == 1 for leaf in tree.leaves())

    def test_leaf_size_respected(self, small_points_3d):
        tree = KDTree(small_points_3d, leaf_size=8)
        assert all(leaf.size <= 8 for leaf in tree.leaves())

    def test_all_points_in_exactly_one_leaf(self, small_points_2d):
        tree = KDTree(small_points_2d, leaf_size=4)
        seen = np.concatenate([leaf.indices for leaf in tree.leaves()])
        assert sorted(seen.tolist()) == list(range(len(small_points_2d)))

    def test_root_contains_all_points(self, small_points_2d):
        tree = KDTree(small_points_2d)
        assert tree.root.size == len(small_points_2d)

    def test_children_partition_parent(self, small_points_3d):
        tree = KDTree(small_points_3d, leaf_size=2)
        for node in tree.nodes():
            if node.is_leaf:
                continue
            left = set(node.left.indices.tolist())
            right = set(node.right.indices.tolist())
            assert left | right == set(node.indices.tolist())
            assert not (left & right)

    def test_node_count_bound(self, small_points_2d):
        n = len(small_points_2d)
        tree = KDTree(small_points_2d, leaf_size=1)
        assert n <= tree.num_nodes <= 2 * n

    def test_bounding_boxes_contain_points(self, small_points_3d):
        tree = KDTree(small_points_3d, leaf_size=4)
        for node in tree.nodes():
            for index in node.indices:
                assert node.box.contains(small_points_3d[index], tol=1e-9)

    def test_bounding_spheres_contain_points(self, small_points_3d):
        tree = KDTree(small_points_3d, leaf_size=4)
        for node in tree.nodes():
            for index in node.indices:
                assert node.sphere.contains(small_points_3d[index])

    def test_single_point(self):
        tree = KDTree(np.array([[1.0, 2.0]]))
        assert tree.root.is_leaf
        assert tree.num_nodes == 1

    def test_duplicate_points_terminate(self):
        points = np.zeros((16, 3))
        tree = KDTree(points, leaf_size=1)
        assert all(leaf.size == 1 for leaf in tree.leaves())

    def test_collinear_points(self):
        points = np.column_stack([np.arange(32.0), np.zeros(32)])
        tree = KDTree(points, leaf_size=2)
        assert sum(leaf.size for leaf in tree.leaves()) == 32

    def test_invalid_leaf_size(self):
        with pytest.raises(InvalidParameterError):
            KDTree(np.zeros((4, 2)), leaf_size=0)

    def test_height_logarithmic_for_uniform_data(self):
        rng = np.random.default_rng(0)
        points = rng.random((256, 2))
        tree = KDTree(points, leaf_size=1)
        # Spatial-median splits on uniform data give height close to log2(n);
        # allow generous slack while still catching a degenerate linear tree.
        assert tree.height() <= 4 * int(np.log2(256))

    def test_size_and_dimension(self, small_points_5d):
        tree = KDTree(small_points_5d)
        assert tree.size == len(small_points_5d)
        assert tree.dimension == 5

    def test_node_points_accessor(self, small_points_2d):
        tree = KDTree(small_points_2d, leaf_size=4)
        node = next(iter(tree.leaves()))
        assert np.array_equal(tree.node_points(node), small_points_2d[node.indices])


class TestCoreDistanceAnnotation:
    def test_min_max_consistency(self, small_points_2d):
        tree = KDTree(small_points_2d, leaf_size=2)
        rng = np.random.default_rng(5)
        core = rng.random(len(small_points_2d))
        tree.annotate_core_distances(core)
        for node in tree.nodes():
            values = core[node.indices]
            assert node.cd_min == pytest.approx(values.min())
            assert node.cd_max == pytest.approx(values.max())

    def test_requires_matching_length(self, small_points_2d):
        tree = KDTree(small_points_2d)
        with pytest.raises(InvalidParameterError):
            tree.annotate_core_distances(np.zeros(3))

    def test_core_distances_property_after_annotation(self, small_points_2d):
        tree = KDTree(small_points_2d)
        core = np.ones(len(small_points_2d))
        tree.annotate_core_distances(core)
        assert tree.has_core_distances
        assert np.array_equal(tree.core_distances, core)

    def test_core_distances_property_before_annotation_raises(self, small_points_2d):
        tree = KDTree(small_points_2d)
        assert not tree.has_core_distances
        with pytest.raises(NotComputedError):
            _ = tree.core_distances
