"""Estimator facade: fit/fit_predict, params round-trip, unfitted access."""

from __future__ import annotations

import numpy as np
import pytest

from repro import emst, hdbscan
from repro.core.errors import (
    InvalidParameterError,
    InvalidPointSetError,
    NotComputedError,
)
from repro.estimators import EMST, HDBSCAN


class TestEMSTEstimator:
    def test_fit_matches_functional_api(self, small_points_2d):
        model = EMST().fit(small_points_2d)
        reference = emst(small_points_2d)
        u, v, w = reference.edges.as_arrays()
        assert np.array_equal(model.edges_[:, 0], u)
        assert np.array_equal(model.edges_[:, 1], v)
        assert np.array_equal(model.weights_, w)
        assert model.total_weight_ == pytest.approx(reference.total_weight)
        assert model.n_features_in_ == 2
        assert model.result_.method == "memogfk"

    def test_fit_returns_self_and_chains(self, small_points_2d):
        model = EMST()
        assert model.fit(small_points_2d) is model

    def test_metric_is_threaded(self, small_points_2d):
        manhattan = EMST(metric="manhattan").fit(small_points_2d)
        euclid = EMST().fit(small_points_2d)
        assert manhattan.total_weight_ > euclid.total_weight_
        reference = emst(small_points_2d, metric="manhattan")
        assert manhattan.total_weight_ == pytest.approx(reference.total_weight)

    def test_fit_predict_labels(self, clustered_points):
        points, truth = clustered_points
        labels = EMST(n_clusters=2).fit_predict(points)
        assert labels.shape == (points.shape[0],)
        assert len(set(labels.tolist())) == 2
        # The two blobs are well separated: labels must match truth up to
        # permutation.
        agreement = max(
            np.mean(labels == truth), np.mean(labels == 1 - truth)
        )
        assert agreement == 1.0

    def test_fit_predict_requires_n_clusters(self, small_points_2d):
        with pytest.raises(InvalidParameterError):
            EMST().fit_predict(small_points_2d)

    def test_params_round_trip(self):
        model = EMST(method="gfk", metric="chebyshev", num_threads=2, n_clusters=4)
        params = model.get_params()
        clone = EMST().set_params(**params)
        assert clone.get_params() == params
        assert clone.set_params(metric="manhattan") is clone
        assert clone.get_params()["metric"] == "manhattan"

    def test_set_params_rejects_unknown(self):
        with pytest.raises(InvalidParameterError):
            EMST().set_params(bogus=1)

    def test_unfitted_access_raises(self):
        model = EMST()
        with pytest.raises(NotComputedError, match="not fitted"):
            model.edges_
        with pytest.raises(NotComputedError):
            model.total_weight_
        with pytest.raises(AttributeError):
            model.definitely_not_an_attribute

    def test_fitted_without_n_clusters_explains_missing_labels(
        self, small_points_2d
    ):
        model = EMST().fit(small_points_2d)
        with pytest.raises(NotComputedError, match="n_clusters"):
            model.labels_

    def test_bad_n_clusters_fails_before_computation(self, small_points_2d):
        model = EMST(n_clusters=0)
        with pytest.raises(InvalidParameterError):
            model.fit(small_points_2d)
        # Nothing was computed: the instance still reads as unfitted.
        with pytest.raises(NotComputedError, match="not fitted"):
            model.edges_

    def test_invalid_inputs_fail_fast(self):
        with pytest.raises(InvalidPointSetError):
            EMST().fit([])
        with pytest.raises(InvalidPointSetError):
            EMST().fit([[0.0, np.nan]])
        with pytest.raises(InvalidParameterError):
            EMST(method="bogus").fit([[0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(InvalidParameterError):
            EMST(metric="bogus").fit([[0.0, 0.0], [1.0, 1.0]])

    def test_input_coercion(self):
        # Lists and float32 arrays coerce to the same result as float64.
        rng = np.random.default_rng(3)
        points = rng.random((40, 2))
        as_f32 = EMST().fit(points.astype(np.float32))
        as_list = EMST().fit(points.astype(np.float32).tolist())
        assert np.array_equal(as_f32.edges_, as_list.edges_)
        assert np.array_equal(as_f32.weights_, as_list.weights_)


class TestHDBSCANEstimator:
    def test_fit_predict_matches_functional_api(self, clustered_points):
        points, truth = clustered_points
        model = HDBSCAN(min_pts=5, min_cluster_size=5)
        labels = model.fit_predict(points)
        reference = hdbscan(points, min_pts=5)
        assert np.array_equal(labels, reference.eom_labels(min_cluster_size=5))
        assert np.array_equal(model.labels_, labels)
        assert np.array_equal(model.core_distances_, reference.core_distances)
        u, v, w = reference.mst.edges.as_arrays()
        assert np.array_equal(model.mst_edges_[:, 0], u)
        assert np.array_equal(model.mst_weights_, w)

    def test_probabilities_shape_and_range(self, clustered_points):
        points, _ = clustered_points
        model = HDBSCAN(min_pts=5).fit(points)
        probs = model.probabilities_
        assert probs.shape == (points.shape[0],)
        assert np.all((0.0 <= probs) & (probs <= 1.0))
        # Noise points get probability 0; clustered points positive.
        noise = model.labels_ == -1
        assert np.all(probs[noise] == 0.0)
        assert np.all(probs[~noise] > 0.0)
        # Every cluster has at least one full-strength member.
        for label in np.unique(model.labels_[model.labels_ >= 0]):
            assert probs[model.labels_ == label].max() == pytest.approx(1.0)

    def test_epsilon_cut_mode(self, clustered_points):
        points, _ = clustered_points
        model = HDBSCAN(min_pts=5, epsilon=0.2, min_cluster_size=5).fit(points)
        reference = hdbscan(points, min_pts=5)
        expected = reference.dbscan_labels(0.2, min_cluster_size=5)
        assert np.array_equal(model.labels_, expected)
        assert np.array_equal(model.probabilities_, (expected >= 0).astype(float))

    def test_metric_is_threaded(self, clustered_points):
        points, _ = clustered_points
        model = HDBSCAN(min_pts=5, metric="manhattan").fit(points)
        reference = hdbscan(points, min_pts=5, metric="manhattan")
        assert np.array_equal(model.mst_weights_, reference.mst.edges.as_arrays()[2])

    def test_params_round_trip(self):
        model = HDBSCAN(
            min_pts=7,
            min_cluster_size=3,
            metric="minkowski:3",
            method="gantao",
            epsilon=0.5,
            allow_single_cluster=True,
            num_threads=2,
        )
        params = model.get_params()
        clone = HDBSCAN().set_params(**params)
        assert clone.get_params() == params

    def test_unfitted_access_raises(self):
        model = HDBSCAN()
        with pytest.raises(NotComputedError):
            model.labels_
        with pytest.raises(NotComputedError):
            model.probabilities_

    def test_single_point_is_noise(self):
        model = HDBSCAN().fit([[1.0, 2.0]])
        assert np.array_equal(model.labels_, np.array([-1]))
        assert np.array_equal(model.probabilities_, np.array([0.0]))

    def test_min_pts_larger_than_n_raises(self):
        # Same contract as the functional hdbscan(): no silent clamping.
        points = np.random.default_rng(9).random((6, 2))
        with pytest.raises(InvalidParameterError):
            HDBSCAN(min_pts=50).fit(points)
        model = HDBSCAN(min_pts=6).fit(points)
        assert model.labels_.shape == (6,)

    def test_invalid_inputs_fail_fast(self):
        with pytest.raises(InvalidPointSetError):
            HDBSCAN().fit([])
        with pytest.raises(InvalidParameterError):
            HDBSCAN(method="bogus").fit([[0.0, 0.0], [1.0, 1.0]])

    def test_repr_shows_params(self):
        text = repr(HDBSCAN(min_pts=12, metric="manhattan"))
        assert "HDBSCAN" in text and "min_pts=12" in text and "manhattan" in text


class TestParamsAndRepr:
    """get_params/set_params round-trip and the non-default-only repr."""

    def test_hdbscan_round_trips_every_knob(self):
        model = HDBSCAN(
            min_pts=7,
            min_cluster_size=9,
            epsilon=0.4,
            allow_single_cluster=True,
            method="gantao",
            metric="minkowski:3",
            backend="numpy-f32",
            approx_epsilon=0.25,
            num_threads=3,
            memory_budget="256M",
            checkpoint_dir="/tmp/ckpt",
            resume=False,
            max_retries=5,
            task_timeout=30.0,
        )
        params = model.get_params()
        clone = HDBSCAN().set_params(**params)
        assert clone.get_params() == params
        # Every constructor knob must be covered by get_params.
        import inspect

        signature_names = {
            name
            for name in inspect.signature(HDBSCAN.__init__).parameters
            if name != "self"
        }
        assert set(params) == signature_names

    def test_emst_round_trips_every_knob(self):
        import inspect

        model = EMST(
            method="gfk",
            metric="chebyshev",
            backend="numpy",
            epsilon=0.1,
            n_clusters=4,
            num_threads=2,
            memory_budget=1 << 20,
            checkpoint_dir="/tmp/ckpt",
            resume=False,
            max_retries=1,
            task_timeout=5.0,
        )
        params = model.get_params()
        clone = EMST().set_params(**params)
        assert clone.get_params() == params
        signature_names = {
            name
            for name in inspect.signature(EMST.__init__).parameters
            if name != "self"
        }
        assert set(params) == signature_names

    def test_set_params_rejects_unknown_names(self):
        with pytest.raises((InvalidParameterError, ValueError)):
            HDBSCAN().set_params(bogus=1)

    def test_repr_shows_only_non_defaults(self):
        assert repr(HDBSCAN()) == "HDBSCAN()"
        assert repr(EMST()) == "EMST()"
        text = repr(HDBSCAN(min_pts=20, method="gantao"))
        assert text == "HDBSCAN(min_pts=20, method='gantao')"
        assert "min_cluster_size" not in text

    def test_repr_round_trips_through_eval(self):
        model = EMST(method="gfk", num_threads=2)
        clone = eval(repr(model))
        assert clone.get_params() == model.get_params()
