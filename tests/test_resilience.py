"""Checkpoint/resume: atomic phase storage and byte-identical recovery.

Two layers of coverage:

* Unit tests of :class:`~repro.resilience.checkpoint.CheckpointManager` — the
  atomic commit protocol, checksum verification, fingerprint matching, the
  ``resume=False`` discard path and phase retirement.
* Kill-and-resume property tests over the real pipelines: a fit is killed
  (via the deterministic ``crash-after-phase`` fault) after *every* phase
  boundary it commits, resumed in the same process, and its output compared
  **byte-for-byte** against an uninterrupted run — across EMST and HDBSCAN,
  thread counts 1 and 4, and bounded/unbounded memory budgets.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import emst, hdbscan
from repro.core.errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    InvalidParameterError,
)
from repro.resilience import (
    CheckpointManager,
    InjectedCrashError,
    build_fingerprint,
    fingerprint_points,
    inject_faults,
)


@pytest.fixture()
def checkpoint_dir(tmp_path):
    return tmp_path / "ckpt"


class TestFingerprint:
    def test_streamed_hash_matches_dtype_shape_and_content(self):
        points = np.random.default_rng(0).random((50, 3))
        assert fingerprint_points(points) == fingerprint_points(points.copy())
        assert fingerprint_points(points) != fingerprint_points(points[:49])
        assert fingerprint_points(points) != fingerprint_points(
            points.astype(np.float32)
        )
        reshaped = points.reshape(75, 2)
        assert fingerprint_points(points) != fingerprint_points(reshaped)

    def test_non_contiguous_input_hashes_like_its_copy(self):
        points = np.random.default_rng(1).random((40, 6))[:, ::2]
        assert not points.flags.c_contiguous
        assert fingerprint_points(points) == fingerprint_points(
            np.ascontiguousarray(points)
        )

    def test_build_fingerprint_canonicalizes_knobs(self):
        points = np.random.default_rng(2).random((10, 2))
        fingerprint = build_fingerprint(
            points, algorithm="emst", method="memogfk", metric="l2"
        )
        assert fingerprint["metric"] == "euclidean"
        assert fingerprint["backend"] == "numpy"
        assert fingerprint["num_threads"] == 1
        assert fingerprint["memory_budget"] == "unbounded"
        # The whole dict must survive the JSON manifest round-trip unchanged.
        assert json.loads(json.dumps(fingerprint)) == fingerprint


class TestCheckpointManager:
    FINGERPRINT = {"algorithm": "unit", "method": "test"}

    def test_save_and_load_round_trip(self, checkpoint_dir):
        manager = CheckpointManager(checkpoint_dir, self.FINGERPRINT)
        arrays = {
            "a": np.arange(10, dtype=np.int64),
            "b": np.linspace(0, 1, 7),
        }
        manager.save_phase("alpha", arrays, {"round": 3})
        assert manager.has_phase("alpha")
        loaded, meta = manager.load_phase("alpha")
        assert meta == {"round": 3}
        for key, value in arrays.items():
            assert np.array_equal(loaded[key], value)
            assert loaded[key].dtype == value.dtype

    def test_reopen_resumes_completed_phases(self, checkpoint_dir):
        manager = CheckpointManager(checkpoint_dir, self.FINGERPRINT)
        manager.save_phase("alpha", {"x": np.ones(3)})
        reopened = CheckpointManager(checkpoint_dir, self.FINGERPRINT)
        assert reopened.completed_phases == ("alpha",)
        loaded, _ = reopened.load_phase("alpha")
        assert np.array_equal(loaded["x"], np.ones(3))

    def test_fingerprint_mismatch_raises_and_names_fields(self, checkpoint_dir):
        CheckpointManager(checkpoint_dir, self.FINGERPRINT)
        with pytest.raises(CheckpointMismatchError, match="method"):
            CheckpointManager(checkpoint_dir, {"algorithm": "unit", "method": "other"})

    def test_resume_false_discards_existing_state(self, checkpoint_dir):
        manager = CheckpointManager(checkpoint_dir, self.FINGERPRINT)
        manager.save_phase("alpha", {"x": np.ones(3)})
        fresh = CheckpointManager(
            checkpoint_dir, {"algorithm": "unit", "method": "other"}, resume=False
        )
        assert fresh.completed_phases == ()

    def test_truncated_phase_file_is_detected_by_checksum(self, checkpoint_dir):
        manager = CheckpointManager(checkpoint_dir, self.FINGERPRINT)
        manager.save_phase("alpha", {"x": np.arange(1000, dtype=np.float64)})
        path = checkpoint_dir / "phase-alpha.npz"
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size // 2)
        reopened = CheckpointManager(checkpoint_dir, self.FINGERPRINT)
        with pytest.raises(CheckpointCorruptError, match="corrupt or truncated"):
            reopened.load_phase("alpha")

    def test_bitflip_corruption_is_detected_by_checksum(self, checkpoint_dir):
        manager = CheckpointManager(checkpoint_dir, self.FINGERPRINT)
        manager.save_phase("alpha", {"x": np.arange(1000, dtype=np.float64)})
        path = checkpoint_dir / "phase-alpha.npz"
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF  # same size, different bytes
        path.write_bytes(payload)
        with pytest.raises(CheckpointCorruptError, match="corrupt or truncated"):
            CheckpointManager(checkpoint_dir, self.FINGERPRINT).load_phase("alpha")

    def test_corrupt_manifest_raises_typed_error(self, checkpoint_dir):
        CheckpointManager(checkpoint_dir, self.FINGERPRINT)
        (checkpoint_dir / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointCorruptError, match="manifest"):
            CheckpointManager(checkpoint_dir, self.FINGERPRINT)

    def test_missing_phase_file_raises_typed_error(self, checkpoint_dir):
        manager = CheckpointManager(checkpoint_dir, self.FINGERPRINT)
        manager.save_phase("alpha", {"x": np.ones(3)})
        (checkpoint_dir / "phase-alpha.npz").unlink()
        with pytest.raises(CheckpointCorruptError, match="missing"):
            manager.load_phase("alpha")

    def test_remove_phase_retires_file_and_record(self, checkpoint_dir):
        manager = CheckpointManager(checkpoint_dir, self.FINGERPRINT)
        manager.save_phase("alpha", {"x": np.ones(3)})
        manager.remove_phase("alpha")
        assert not manager.has_phase("alpha")
        assert not (checkpoint_dir / "phase-alpha.npz").exists()
        # Idempotent on missing phases.
        manager.remove_phase("alpha")

    def test_invalid_phase_name_rejected(self, checkpoint_dir):
        manager = CheckpointManager(checkpoint_dir, self.FINGERPRINT)
        for bad in ("", "UPPER", "has space", "../escape", "-leading"):
            with pytest.raises(InvalidParameterError):
                manager.save_phase(bad, {"x": np.ones(1)})

    def test_no_temp_files_survive_a_commit(self, checkpoint_dir):
        manager = CheckpointManager(checkpoint_dir, self.FINGERPRINT)
        manager.save_phase("alpha", {"x": np.ones(100)})
        leftovers = [
            name for name in (p.name for p in checkpoint_dir.iterdir())
            if ".tmp-" in name
        ]
        assert leftovers == []


@pytest.fixture(scope="module")
def resilience_points():
    return np.random.default_rng(42).normal(size=(220, 3))


def _emst_bytes(result):
    return tuple(array.tobytes() for array in result.edges.as_arrays())


def _hdbscan_bytes(result):
    parts = [result.core_distances.tobytes()]
    parts.extend(array.tobytes() for array in result.mst.edges.as_arrays())
    parts.append(result.dbscan_labels(0.6).tobytes())
    if result.dendrogram is not None:
        for value in result.dendrogram.state_arrays().values():
            parts.append(value.tobytes())
    return tuple(parts)


class TestKillAndResumeIdentity:
    """Interrupt after every phase boundary; resume must be byte-identical."""

    THREADS = (1, 4)
    BUDGETS = (None, "16M")

    @pytest.mark.parametrize("num_threads", THREADS)
    @pytest.mark.parametrize("budget", BUDGETS)
    def test_emst_every_phase_boundary(
        self, tmp_path, resilience_points, num_threads, budget
    ):
        reference = emst(
            resilience_points, num_threads=num_threads, memory_budget=budget
        )
        boundary = 0
        while True:
            directory = tmp_path / f"kill-{num_threads}-{budget}-{boundary}"
            try:
                with inject_faults(f"crash-after-phase:at={boundary}"):
                    emst(
                        resilience_points,
                        num_threads=num_threads,
                        memory_budget=budget,
                        checkpoint_dir=directory,
                    )
            except InjectedCrashError:
                pass
            else:
                break  # boundary index beyond the last commit: clean run
            resumed = emst(
                resilience_points,
                num_threads=num_threads,
                memory_budget=budget,
                checkpoint_dir=directory,
            )
            assert _emst_bytes(resumed) == _emst_bytes(reference), (
                f"resume after boundary {boundary} diverged"
            )
            boundary += 1
        assert boundary >= 2, "expected multiple phase boundaries to test"

    @pytest.mark.parametrize("num_threads", THREADS)
    @pytest.mark.parametrize("budget", BUDGETS)
    def test_hdbscan_every_phase_boundary(
        self, tmp_path, resilience_points, num_threads, budget
    ):
        reference = hdbscan(
            resilience_points,
            min_pts=8,
            num_threads=num_threads,
            memory_budget=budget,
        )
        boundary = 0
        while True:
            directory = tmp_path / f"kill-{num_threads}-{budget}-{boundary}"
            try:
                with inject_faults(f"crash-after-phase:at={boundary}"):
                    hdbscan(
                        resilience_points,
                        min_pts=8,
                        num_threads=num_threads,
                        memory_budget=budget,
                        checkpoint_dir=directory,
                    )
            except InjectedCrashError:
                pass
            else:
                break
            resumed = hdbscan(
                resilience_points,
                min_pts=8,
                num_threads=num_threads,
                memory_budget=budget,
                checkpoint_dir=directory,
            )
            assert _hdbscan_bytes(resumed) == _hdbscan_bytes(reference), (
                f"resume after boundary {boundary} diverged"
            )
            boundary += 1
        # core-distances + per-round MST snapshots + final mst + dendrogram.
        assert boundary >= 4, "expected multiple phase boundaries to test"


class TestCheckpointPipelineGuards:
    def test_finished_checkpoint_serves_without_recompute(
        self, tmp_path, resilience_points
    ):
        directory = tmp_path / "done"
        first = emst(resilience_points, checkpoint_dir=directory)
        # Corrupting the *input* must be caught by the fingerprint, proving
        # the second call really consults the manifest.
        with pytest.raises(CheckpointMismatchError, match="points_sha256"):
            emst(resilience_points * 2.0, checkpoint_dir=directory)
        again = emst(resilience_points, checkpoint_dir=directory)
        assert _emst_bytes(first) == _emst_bytes(again)

    def test_parameter_change_is_a_mismatch(self, tmp_path, resilience_points):
        directory = tmp_path / "params"
        hdbscan(resilience_points, min_pts=8, checkpoint_dir=directory)
        with pytest.raises(CheckpointMismatchError, match="min_pts"):
            hdbscan(resilience_points, min_pts=9, checkpoint_dir=directory)

    def test_thread_count_is_part_of_the_fingerprint(
        self, tmp_path, resilience_points
    ):
        directory = tmp_path / "threads"
        emst(resilience_points, num_threads=1, checkpoint_dir=directory)
        with pytest.raises(CheckpointMismatchError, match="num_threads"):
            emst(resilience_points, num_threads=4, checkpoint_dir=directory)

    def test_resume_false_overwrites_mismatched_state(
        self, tmp_path, resilience_points
    ):
        directory = tmp_path / "fresh"
        emst(resilience_points, checkpoint_dir=directory)
        result = emst(
            resilience_points * 2.0, checkpoint_dir=directory, resume=False
        )
        reference = emst(resilience_points * 2.0)
        assert _emst_bytes(result) == _emst_bytes(reference)

    def test_truncated_phase_fails_fast_on_resume(
        self, tmp_path, resilience_points
    ):
        directory = tmp_path / "torn"
        # The truncate-checkpoint fault tears the committed core-distances
        # file *after* its checksum was recorded — exactly a torn write that
        # survived the crash.  The crash then interrupts the run.
        with inject_faults(
            "truncate-checkpoint:phase=core-distances;"
            "crash-after-phase:phase=core-distances"
        ):
            with pytest.raises(InjectedCrashError):
                hdbscan(
                    resilience_points, min_pts=8, checkpoint_dir=directory
                )
        with pytest.raises(CheckpointCorruptError, match="corrupt or truncated"):
            hdbscan(resilience_points, min_pts=8, checkpoint_dir=directory)
