"""Tests for the fit-once serving layer (:mod:`repro.serve`).

The serving contract is the byte-identity story extended to the read side:
a re-cut off the frozen fit-state must equal a cold refit at the same
parameters down to the byte, across every exact method and thread count,
and surviving a save/load round trip.  The predict, cache, engine and
buffer-release behaviours the issue gates are covered alongside.
"""

import io
import json
import math

import numpy as np
import pytest

from conformance import CONFORMANCE_THREAD_COUNTS, EXACT_HDBSCAN_METHODS
from repro.core.budget import MemoryBudget, use_memory_budget
from repro.core.errors import FitStateError, InvalidParameterError
from repro.datasets import gaussian_blobs
from repro.emst.api import emst
from repro.estimators import HDBSCAN
from repro.hdbscan.api import hdbscan
from repro.serve import (
    ServingEngine,
    approximate_predict,
    compute_cut,
    cut_key,
    fit_state,
    load_state,
)

MIN_PTS = 5
MIN_CLUSTER_SIZE = 5
EPSILONS = (0.1, 0.3)


@pytest.fixture(scope="module")
def points():
    return gaussian_blobs(240, 3, num_clusters=4, cluster_std=0.03, seed=7)


@pytest.fixture(scope="module")
def state(points):
    return fit_state(points, min_pts=MIN_PTS, min_cluster_size=MIN_CLUSTER_SIZE)


class TestRecutIdentity:
    """recut() must be byte-identical to a cold fit at the same parameters."""

    @pytest.mark.parametrize("method", EXACT_HDBSCAN_METHODS)
    @pytest.mark.parametrize("threads", CONFORMANCE_THREAD_COUNTS)
    def test_epsilon_recut_matches_cold_fit(self, points, method, threads):
        fitted = fit_state(
            points, min_pts=MIN_PTS, method=method, num_threads=threads
        )
        for epsilon in EPSILONS:
            cold = HDBSCAN(
                min_pts=MIN_PTS, epsilon=epsilon, method=method,
                num_threads=threads,
            ).fit_predict(points)
            cut = fitted.recut(epsilon=epsilon)
            assert cut.labels.tobytes() == np.asarray(cold).tobytes(), (
                f"method={method} threads={threads} epsilon={epsilon}"
            )

    def test_eom_recut_matches_fitted_labels(self, points, state):
        model = HDBSCAN(
            min_pts=MIN_PTS, min_cluster_size=MIN_CLUSTER_SIZE
        ).fit(points)
        cut = state.recut()
        assert cut.labels.tobytes() == model.labels_.tobytes()
        assert cut.probabilities.tobytes() == model.probabilities_.tobytes()

    def test_min_cluster_size_recut_matches_cold_fit(self, points, state):
        for mcs in (3, 12):
            cold = HDBSCAN(min_pts=MIN_PTS, min_cluster_size=mcs).fit(points)
            cut = state.recut(min_cluster_size=mcs)
            assert cut.labels.tobytes() == cold.labels_.tobytes()

    def test_n_clusters_cut(self, points, state):
        cut = state.recut(n_clusters=4)
        assert cut.num_clusters == 4
        assert cut.labels.min() >= 0  # single-linkage cut has no noise

    def test_cut_arrays_are_frozen(self, state):
        cut = state.recut(epsilon=0.3)
        with pytest.raises((ValueError, RuntimeError)):
            cut.labels[0] = 99

    def test_invalid_cut_parameters(self, state):
        with pytest.raises(InvalidParameterError):
            state.recut(epsilon=0.5, n_clusters=3)
        with pytest.raises(InvalidParameterError):
            state.recut(n_clusters=0)
        with pytest.raises(InvalidParameterError):
            state.recut(n_clusters=state.num_points + 1)
        with pytest.raises(InvalidParameterError):
            state.recut(min_cluster_size=0)


class TestCutCache:
    def test_repeated_cut_hits_cache(self, points):
        fitted = fit_state(points, min_pts=MIN_PTS)
        first, cached_first = fitted.recut_with_info(epsilon=0.2)
        second, cached_second = fitted.recut_with_info(epsilon=0.2)
        assert not cached_first and cached_second
        assert second is first
        info = fitted.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_equivalent_keys_share_an_entry(self, state):
        assert cut_key(state, epsilon=0.25) == cut_key(state, epsilon=0.25)
        assert cut_key(state, epsilon=0.25) != cut_key(state, epsilon=0.3)
        # The fitted min_cluster_size is the default, spelled or implied.
        assert cut_key(state, min_cluster_size=MIN_CLUSTER_SIZE) == cut_key(state)

    def test_negative_zero_epsilon_shares_an_entry(self, state):
        plus = cut_key(state, epsilon=0.0)
        minus = cut_key(state, epsilon=-0.0)
        assert plus == minus
        # Not just ==: the stored float must be the canonical +0.0.
        assert math.copysign(1.0, minus[1]) == 1.0

    def test_non_finite_epsilon_is_rejected(self, state):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(InvalidParameterError, match="finite"):
                cut_key(state, epsilon=bad)
            with pytest.raises(InvalidParameterError, match="finite"):
                state.recut(epsilon=bad)

    def test_lru_evicts_oldest(self, points):
        fitted = fit_state(points, min_pts=MIN_PTS, cut_cache_size=2)
        fitted.recut(epsilon=0.1)
        fitted.recut(epsilon=0.2)
        fitted.recut(epsilon=0.3)  # evicts the 0.1 entry
        _, cached = fitted.recut_with_info(epsilon=0.1)
        assert not cached

    def test_compute_cut_bypasses_cache(self, state):
        direct = compute_cut(state, epsilon=0.2)
        via_cache = state.recut(epsilon=0.2)
        assert direct.labels.tobytes() == via_cache.labels.tobytes()


class TestSaveLoad:
    def test_round_trip_is_byte_identical(self, state, tmp_path):
        path = tmp_path / "state.npz"
        state.save(path)
        loaded = load_state(path)
        assert loaded.points.tobytes() == state.points.tobytes()
        assert loaded.core_distances.tobytes() == state.core_distances.tobytes()
        for kwargs in ({}, {"epsilon": 0.2}, {"n_clusters": 3}):
            original = state.recut(**kwargs)
            restored = loaded.recut(**kwargs)
            assert original.labels.tobytes() == restored.labels.tobytes()
            assert (
                original.probabilities.tobytes()
                == restored.probabilities.tobytes()
            )

    def test_predict_survives_round_trip(self, points, state, tmp_path):
        path = tmp_path / "state.npz"
        state.save(path)
        loaded = load_state(path)
        queries = points[:40] + 1e-4
        expected = approximate_predict(state, queries)
        restored = approximate_predict(loaded, queries)
        assert expected[0].tobytes() == restored[0].tobytes()
        assert expected[1].tobytes() == restored[1].tobytes()

    def test_truncated_file_is_refused(self, state, tmp_path):
        path = tmp_path / "state.npz"
        state.save(path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(FitStateError):
            load_state(path)

    def test_flipped_payload_byte_is_refused(self, state, tmp_path):
        path = tmp_path / "state.npz"
        state.save(path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(FitStateError):
            load_state(path)

    def test_missing_file_is_refused(self, tmp_path):
        with pytest.raises(FitStateError):
            load_state(tmp_path / "absent.npz")

    def test_mismatched_metric_request_is_refused(self, state, tmp_path):
        path = tmp_path / "state.npz"
        state.save(path)
        with pytest.raises(FitStateError):
            load_state(path, metric="manhattan")
        # An explicit matching request is fine.
        load_state(path, metric="euclidean")

    def test_non_state_npz_is_refused(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, data=np.arange(4))
        with pytest.raises(FitStateError):
            load_state(path)


class TestApproximatePredict:
    def test_training_points_reproduce_fitted_labels(self, points, state):
        fitted = state.recut().labels
        labels, probabilities = approximate_predict(state, points)
        assert np.array_equal(labels, fitted)
        assert (probabilities >= 0).all() and (probabilities <= 1).all()

    def test_far_outlier_is_noise(self, state):
        labels, probabilities = approximate_predict(
            state, np.full((1, state.dimension), 1e6)
        )
        assert labels[0] == -1 and probabilities[0] == 0.0

    def test_empty_query_batch(self, state):
        labels, probabilities = approximate_predict(
            state, np.empty((0, state.dimension))
        )
        assert labels.shape == (0,) and probabilities.shape == (0,)

    def test_dimension_mismatch_is_rejected(self, state):
        with pytest.raises(InvalidParameterError):
            approximate_predict(state, np.zeros((3, state.dimension + 1)))

    def test_thread_count_does_not_change_predictions(self, points, state):
        queries = points[::3] + 5e-4
        one = approximate_predict(state, queries, num_threads=1)
        two = approximate_predict(state, queries, num_threads=2)
        assert one[0].tobytes() == two[0].tobytes()
        assert one[1].tobytes() == two[1].tobytes()

    def test_duplicate_queries_are_byte_deterministic(self, points):
        # Exact-duplicate fitted points make the k-NN neighbour lists pure
        # ties; the lexsort tie-break must pin predictions regardless of the
        # traversal order a thread count or backend happens to produce.
        doubled = np.concatenate([points, points[:60]])
        fitted = {
            backend: fit_state(doubled, min_pts=MIN_PTS, backend=backend)
            for backend in ("numpy", "numpy-f32")
        }
        queries = np.concatenate([points[:60], points[:60]])
        label_blobs = set()
        for backend, fit in fitted.items():
            reference = None
            for threads in (1, 2, 4):
                got = approximate_predict(fit, queries, num_threads=threads)
                blob = got[0].tobytes() + got[1].tobytes()
                if reference is None:
                    reference = blob
                    label_blobs.add(got[0].tobytes())
                assert blob == reference, f"{backend} threads={threads}"
        # Across backends only the labels are comparable byte-for-byte: a
        # lowered backend's *fit* is held to bounded agreement, so its
        # probabilities may sit an ulp away from the exact engine's.
        assert len(label_blobs) == 1
        # Identical queries get identical predictions within one batch too.
        labels, probabilities = approximate_predict(fitted["numpy"], queries)
        assert np.array_equal(labels[:60], labels[60:])
        assert np.array_equal(probabilities[:60], probabilities[60:])


class TestServingEngine:
    def test_recut_and_predict_requests(self, points, state):
        engine = ServingEngine(state)
        recut = engine.handle({"op": "recut", "epsilon": 0.3})
        assert recut["ok"] and recut["kind"] == "epsilon"
        assert recut["labels"] == state.recut(epsilon=0.3).labels.tolist()
        predict = engine.handle({"op": "predict", "points": points[:5].tolist()})
        assert predict["ok"] and len(predict["labels"]) == 5

    def test_info_and_stats(self, state):
        engine = ServingEngine(state)
        info = engine.handle({"op": "info"})
        assert info["ok"] and info["num_points"] == state.num_points
        engine.handle({"op": "recut", "epsilon": 0.2})
        stats = engine.handle({"op": "stats"})
        assert stats["ok"] and stats["requests_served"] >= 2

    def test_bad_requests_do_not_raise(self, state):
        engine = ServingEngine(state)
        for request in (
            {"op": "bogus"},
            {"op": "recut", "epsilon": 0.1, "n_clusters": 2},
            {"op": "predict"},
            {"op": "predict", "points": [[1.0]]},
        ):
            response = engine.handle(request)
            assert response["ok"] is False and "error" in response
        assert engine.requests_failed == 4

    def test_batch_keeps_request_order(self, state):
        engine = ServingEngine(state)
        requests = [{"op": "recut", "epsilon": 0.1 + 0.05 * i} for i in range(6)]
        responses = engine.handle_batch(requests, num_threads=2)
        assert [r["ok"] for r in responses] == [True] * 6
        for request, response in zip(requests, responses):
            expected = state.recut(epsilon=request["epsilon"])
            assert response["labels"] == expected.labels.tolist()

    def test_serve_stream(self, state):
        engine = ServingEngine(state)
        lines = "\n".join(
            [json.dumps({"op": "recut", "epsilon": 0.2}), "", "not json",
             json.dumps({"op": "stats"})]
        )
        output = io.StringIO()
        answered = engine.serve_stream(io.StringIO(lines), output)
        responses = [json.loads(line) for line in output.getvalue().splitlines()]
        assert answered == 3  # the blank line is skipped
        assert [r["ok"] for r in responses] == [True, False, True]


class TestPostFitBufferRelease:
    """After a fit returns, only live data survives (issue satellite)."""

    def test_edge_buffers_are_shrunk_post_fit(self, points):
        result = hdbscan(points, min_pts=MIN_PTS)
        assert result.mst.edges.capacity == len(result.mst.edges)
        tree = emst(points, method="gfk")
        assert tree.edges.capacity == len(tree.edges)

    def test_no_live_spilled_bytes_post_fit(self, points):
        budget = MemoryBudget("2M")
        with use_memory_budget(budget):
            result = hdbscan(points, min_pts=MIN_PTS, method="memogfk")
        assert result is not None
        assert budget.live_spilled_bytes == 0

    def test_fit_state_under_bounded_budget(self, points):
        budget = MemoryBudget("2M")
        fitted = fit_state(points, min_pts=MIN_PTS, memory_budget=budget)
        assert budget.live_spilled_bytes == 0
        cut = fitted.recut(epsilon=0.3)
        unbudgeted = fit_state(points, min_pts=MIN_PTS).recut(epsilon=0.3)
        assert cut.labels.tobytes() == unbudgeted.labels.tobytes()
