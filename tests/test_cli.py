"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, load_points, main
from repro.datasets import gaussian_blobs


@pytest.fixture()
def csv_points(tmp_path):
    points = gaussian_blobs(120, 2, num_clusters=2, cluster_std=0.02, seed=1)
    path = tmp_path / "points.csv"
    np.savetxt(path, points, delimiter=",", header="x,y")
    return path, points


class TestLoadPoints:
    def test_csv_with_header(self, csv_points):
        path, points = csv_points
        loaded = load_points(str(path))
        assert loaded.shape == points.shape
        assert np.allclose(loaded, points)

    def test_whitespace_text(self, tmp_path):
        points = np.arange(12.0).reshape(6, 2)
        path = tmp_path / "points.txt"
        np.savetxt(path, points)
        assert np.allclose(load_points(str(path)), points)

    def test_npy(self, tmp_path):
        points = np.random.default_rng(0).random((10, 3))
        path = tmp_path / "points.npy"
        np.save(path, points)
        assert np.allclose(load_points(str(path)), points)

    def test_missing_file(self, tmp_path):
        from repro.core.errors import ReproError

        with pytest.raises(ReproError):
            load_points(str(tmp_path / "nope.csv"))


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_emst_defaults(self):
        args = build_parser().parse_args(["emst", "points.csv"])
        assert args.method == "memogfk"

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["emst", "points.csv", "--method", "bogus"])

    @pytest.mark.parametrize("command", ["emst", "hdbscan", "single-linkage"])
    def test_metric_flag_on_every_subcommand(self, command):
        from repro.core.metric import MinkowskiMetric

        args = build_parser().parse_args(
            [command, "points.csv", "--metric", "minkowski:3"]
        )
        assert isinstance(args.metric, MinkowskiMetric) and args.metric.p == 3.0
        default = build_parser().parse_args([command, "points.csv"])
        from repro.core.metric import EUCLIDEAN

        assert default.metric == EUCLIDEAN

    def test_unknown_metric_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["emst", "points.csv", "--metric", "bogus"])


class TestMain:
    def test_emst_writes_edge_file(self, csv_points, tmp_path):
        path, points = csv_points
        output = tmp_path / "edges.csv"
        assert main(["emst", str(path), "--output", str(output)]) == 0
        lines = output.read_text().strip().splitlines()
        assert lines[0] == "u,v,weight"
        assert len(lines) == len(points)  # header + n-1 edges

    def test_hdbscan_eom_labels(self, csv_points, tmp_path):
        path, points = csv_points
        output = tmp_path / "labels.csv"
        code = main(
            ["hdbscan", str(path), "--min-pts", "5", "--output", str(output)]
        )
        assert code == 0
        labels = [int(v) for v in output.read_text().strip().splitlines()[1:]]
        assert len(labels) == len(points)
        assert len({label for label in labels if label >= 0}) == 2

    def test_hdbscan_epsilon_cut_and_mst_output(self, csv_points, tmp_path):
        path, points = csv_points
        labels_file = tmp_path / "labels.csv"
        mst_file = tmp_path / "mst.csv"
        code = main(
            [
                "hdbscan",
                str(path),
                "--min-pts",
                "5",
                "--epsilon",
                "0.2",
                "--output",
                str(labels_file),
                "--mst-output",
                str(mst_file),
            ]
        )
        assert code == 0
        assert len(mst_file.read_text().strip().splitlines()) == len(points)

    def test_single_linkage_stdout(self, csv_points, capsys):
        path, points = csv_points
        assert main(["single-linkage", str(path), "--num-clusters", "2"]) == 0
        captured = capsys.readouterr()
        labels = [int(v) for v in captured.out.strip().splitlines()[1:]]
        assert len(labels) == len(points)
        assert len(set(labels)) == 2

    def test_missing_input_returns_error_code(self, tmp_path):
        assert main(["emst", str(tmp_path / "missing.csv")]) == 2

    def test_empty_input_returns_error_code(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        assert main(["emst", str(empty)]) == 2

    def test_emst_metric_flag_changes_weights(self, csv_points, tmp_path):
        path, points = csv_points
        euclid_file = tmp_path / "euclid.csv"
        manhattan_file = tmp_path / "manhattan.csv"
        assert main(["emst", str(path), "--output", str(euclid_file)]) == 0
        code = main(
            [
                "emst",
                str(path),
                "--metric",
                "manhattan",
                "--output",
                str(manhattan_file),
            ]
        )
        assert code == 0

        def total(report):
            rows = report.read_text().strip().splitlines()[1:]
            return sum(float(row.split(",")[2]) for row in rows)

        from repro import emst

        assert total(manhattan_file) == pytest.approx(
            emst(points, metric="manhattan").total_weight
        )
        assert total(manhattan_file) > total(euclid_file)

    def test_hdbscan_metric_flag(self, csv_points, tmp_path):
        path, points = csv_points
        output = tmp_path / "labels.csv"
        code = main(
            [
                "hdbscan",
                str(path),
                "--min-pts",
                "5",
                "--metric",
                "chebyshev",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        labels = [int(v) for v in output.read_text().strip().splitlines()[1:]]
        assert len(labels) == len(points)


class TestResilienceCli:
    """Checkpoint/resume flags and the typed-failure exit codes."""

    @pytest.mark.parametrize("command", ["emst", "hdbscan", "single-linkage"])
    def test_resume_requires_checkpoint_dir(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "points.csv", "--resume"])
        assert excinfo.value.code == 2
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().err

    def test_interrupted_run_resumes_identically(self, csv_points, tmp_path):
        from repro.resilience import InjectedCrashError, inject_faults

        path, _ = csv_points
        reference = tmp_path / "reference.csv"
        resumed = tmp_path / "resumed.csv"
        checkpoint = tmp_path / "ckpt"
        assert main(["emst", str(path), "--output", str(reference)]) == 0
        with inject_faults("crash-after-phase:phase=mst"):
            # The injected crash stands in for kill -9: it is not a
            # ReproError, so it escapes main() like a real process death.
            with pytest.raises(InjectedCrashError):
                main(
                    [
                        "emst",
                        str(path),
                        "--checkpoint-dir",
                        str(checkpoint),
                        "--output",
                        str(resumed),
                    ]
                )
        code = main(
            [
                "emst",
                str(path),
                "--checkpoint-dir",
                str(checkpoint),
                "--resume",
                "--output",
                str(resumed),
            ]
        )
        assert code == 0
        assert resumed.read_bytes() == reference.read_bytes()

    def test_checkpoint_mismatch_exits_3(self, csv_points, tmp_path, capsys):
        path, _ = csv_points
        checkpoint = tmp_path / "ckpt"
        base = ["hdbscan", str(path), "--checkpoint-dir", str(checkpoint)]
        assert main(base + ["--min-pts", "5"]) == 0
        assert main(base + ["--resume", "--min-pts", "6"]) == 3
        assert "checkpoint error:" in capsys.readouterr().err

    def test_corrupt_checkpoint_exits_3(self, csv_points, tmp_path, capsys):
        path, _ = csv_points
        checkpoint = tmp_path / "ckpt"
        base = ["emst", str(path), "--checkpoint-dir", str(checkpoint)]
        assert main(base) == 0
        phase = checkpoint / "phase-mst.npz"
        phase.write_bytes(phase.read_bytes()[: phase.stat().st_size // 2])
        assert main(base + ["--resume"]) == 3
        assert "checkpoint error:" in capsys.readouterr().err

    def test_worker_failure_exits_4(self, csv_points, monkeypatch, capsys):
        import repro.parallel.pool as pool_module
        from repro.resilience import inject_faults

        path, _ = csv_points
        # Tiny shards so a 120-point run actually engages the pool.
        monkeypatch.setattr(pool_module, "DEFAULT_CHUNK", 16)
        with inject_faults("kill-worker:times=inf,scope=any"):
            with pytest.warns(pool_module.WorkerRecoveryWarning):
                code = main(["emst", str(path), "--num-threads", "4"])
        assert code == 4
        assert "worker failure:" in capsys.readouterr().err
        pool_module.shutdown_pools()  # drop the deliberately poisoned pool

    def test_spill_exhaustion_exits_5(self, csv_points, monkeypatch, capsys):
        import repro.core.budget as budget_module
        from repro.resilience import inject_faults

        path, _ = csv_points
        # A floor-less tiny budget makes every growable buffer spill, and the
        # injected disk + RAM failures exhaust both homes for it.
        monkeypatch.setattr(budget_module, "MIN_TILE_BYTES", 1)
        with inject_faults("spill-os-error:times=inf;spill-ram-fail:times=inf"):
            with pytest.warns(RuntimeWarning):
                code = main(["emst", str(path), "--memory-budget", "8K"])
        assert code == 5
        assert "spill I/O error:" in capsys.readouterr().err


class TestServeCli:
    """The long-lived serve mode: fit/save, load, request loops, exit codes."""

    def _save_state(self, csv_points, tmp_path):
        path, _ = csv_points
        state_file = tmp_path / "fit.npz"
        assert main(["serve", str(path), "--save", str(state_file)]) == 0
        return state_file

    def test_fit_and_save_then_load_and_answer(self, csv_points, tmp_path):
        import json

        state_file = self._save_state(csv_points, tmp_path)
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "\n".join(
                json.dumps(request)
                for request in (
                    {"op": "recut", "epsilon": 0.3},
                    {"op": "recut", "epsilon": 0.3},
                    {"op": "labels"},
                    {"op": "stats"},
                )
            )
            + "\n"
        )
        responses_file = tmp_path / "responses.jsonl"
        code = main(
            [
                "serve",
                "--load",
                str(state_file),
                "--requests",
                str(requests),
                "--output",
                str(responses_file),
            ]
        )
        assert code == 0
        responses = [
            json.loads(line)
            for line in responses_file.read_text().splitlines()
        ]
        assert len(responses) == 4
        assert all(response["ok"] for response in responses)
        assert not responses[0]["cached"] and responses[1]["cached"]

    def test_fit_serve_without_save(self, csv_points, tmp_path):
        import json

        path, points = csv_points
        requests = tmp_path / "requests.jsonl"
        requests.write_text(json.dumps({"op": "labels"}) + "\n")
        responses_file = tmp_path / "responses.jsonl"
        code = main(
            [
                "serve",
                str(path),
                "--min-pts",
                "5",
                "--requests",
                str(requests),
                "--output",
                str(responses_file),
            ]
        )
        assert code == 0
        response = json.loads(responses_file.read_text())
        assert response["ok"] and len(response["labels"]) == len(points)

    def test_served_labels_match_cold_fit(self, csv_points, tmp_path):
        import json

        from repro.estimators import HDBSCAN

        path, points = csv_points
        state_file = tmp_path / "fit.npz"
        assert main(
            ["serve", str(path), "--min-pts", "5", "--save", str(state_file)]
        ) == 0
        requests = tmp_path / "requests.jsonl"
        requests.write_text(json.dumps({"op": "recut", "epsilon": 0.2}) + "\n")
        responses_file = tmp_path / "responses.jsonl"
        assert main(
            [
                "serve",
                "--load",
                str(state_file),
                "--requests",
                str(requests),
                "--output",
                str(responses_file),
            ]
        ) == 0
        response = json.loads(responses_file.read_text())
        cold = HDBSCAN(min_pts=5, epsilon=0.2).fit_predict(points)
        assert response["labels"] == cold.tolist()

    def test_corrupt_state_exits_2(self, csv_points, tmp_path, capsys):
        state_file = self._save_state(csv_points, tmp_path)
        state_file.write_bytes(
            state_file.read_bytes()[: state_file.stat().st_size // 2]
        )
        assert main(["serve", "--load", str(state_file)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_mismatched_metric_exits_2(self, csv_points, tmp_path, capsys):
        state_file = self._save_state(csv_points, tmp_path)
        code = main(
            ["serve", "--load", str(state_file), "--metric", "manhattan"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_requires_input_or_load(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve"])
        assert excinfo.value.code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_input_and_load_conflict(self, csv_points, tmp_path, capsys):
        path, _ = csv_points
        state_file = self._save_state(csv_points, tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", str(path), "--load", str(state_file)])
        assert excinfo.value.code == 2
        assert "exactly one" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "flags",
        [
            ["--min-pts", "10"],  # the fitting default, passed explicitly
            ["--min-pts", "5"],
            ["--min-cluster-size", "5"],
            ["--method", "memogfk"],
            ["--allow-single-cluster"],
        ],
    )
    def test_load_rejects_fit_shaping_flags(
        self, csv_points, tmp_path, capsys, flags
    ):
        # The saved state fixes the fit parameters; an explicitly passed
        # flag must conflict even when its value equals the fitting default
        # (the None-sentinel defaults make "passed" detectable at all).
        state_file = self._save_state(csv_points, tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--load", str(state_file)] + flags)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert flags[0] in err and "fixed" in err

    def test_mismatched_backend_exits_2(self, csv_points, tmp_path, capsys):
        state_file = self._save_state(csv_points, tmp_path)
        code = main(
            ["serve", "--load", str(state_file), "--backend", "numpy-f32"]
        )
        assert code == 2
        assert "backend" in capsys.readouterr().err

    def test_update_op_round_trip(self, csv_points, tmp_path):
        import json

        path, points = csv_points
        state_file = self._save_state(csv_points, tmp_path)
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "\n".join(
                json.dumps(request)
                for request in (
                    {
                        "op": "update",
                        "insert": points[:3].tolist(),
                        "delete": [0, 1],
                    },
                    {"op": "info"},
                )
            )
            + "\n"
        )
        responses_file = tmp_path / "responses.jsonl"
        code = main(
            [
                "serve",
                "--load",
                str(state_file),
                "--requests",
                str(requests),
                "--output",
                str(responses_file),
            ]
        )
        assert code == 0
        update, info = [
            json.loads(line)
            for line in responses_file.read_text().splitlines()
        ]
        assert update["ok"] and update["deleted"] == 2 and update["inserted"] == 3
        assert update["num_points"] == len(points) + 1
        assert info["ok"] and info["num_points"] == len(points) + 1

    def test_help_epilog_documents_environment(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        text = capsys.readouterr().out
        for name in ("REPRO_BACKEND", "REPRO_MEMORY_BUDGET", "REPRO_FAULTS"):
            assert name in text
        assert "exit codes" in text.lower()
