"""Tests for the shared benchmark harness."""

import numpy as np
import pytest

from repro.bench import (
    THREAD_COUNTS,
    format_scaling_series,
    format_table,
    measure,
    measured_scaling_curve,
    memory_snapshot,
    peak_rss_bytes,
    phase_breakdown,
    run_with_tracker,
    scaling_curve,
)
from repro.core.budget import use_memory_budget
from repro.emst import emst_memogfk
from repro.emst.api import emst


class TestMeasure:
    def test_returns_result_and_time(self):
        result, elapsed = measure(sum, [1, 2, 3])
        assert result == 6
        assert elapsed >= 0.0

    def test_run_with_tracker_collects_work(self):
        points = np.random.default_rng(0).random((80, 2))
        result, tracker, elapsed = run_with_tracker(emst_memogfk, points)
        assert result.is_spanning_tree()
        assert tracker.work > 0
        assert tracker.depth > 0
        assert elapsed > 0


class TestScalingCurve:
    def test_speedups_monotone_and_bounded(self):
        points = np.random.default_rng(1).random((120, 2))
        curve = scaling_curve(emst_memogfk, points, thread_counts=(1, 2, 4, 8))
        speedups = curve["speedups"]
        assert speedups[0] == pytest.approx(1.0)
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] <= 8.0 + 1e-9

    def test_hyperthreaded_final_entry(self):
        points = np.random.default_rng(2).random((100, 2))
        curve = scaling_curve(emst_memogfk, points, thread_counts=(1, 48, 96))
        # The "96" entry models 48 physical cores with hyper-threading and
        # must not exceed 48 * 1.35 effective parallelism.
        assert curve["speedups"][-1] <= 48 * 1.35 + 1e-9

    def test_default_thread_counts_match_paper_figures(self):
        assert THREAD_COUNTS[0] == 1
        assert THREAD_COUNTS[-1] == 96  # 48 cores with hyper-threading


class TestMemoryKeys:
    def test_peak_rss_is_positive_and_monotone(self):
        first = peak_rss_bytes()
        assert first is None or first > 0
        # Force some growth, then re-read: the high-water mark never drops.
        ballast = np.ones(1 << 20)
        second = peak_rss_bytes()
        del ballast
        if first is not None:
            assert second >= first

    def test_memory_snapshot_reports_ambient_budget(self):
        snapshot = memory_snapshot()
        assert set(snapshot) == {
            "peak_rss_bytes",
            "memory_budget",
            "budget_peak_bytes",
        }
        assert snapshot["memory_budget"] == "unbounded"
        assert snapshot["budget_peak_bytes"] == 0
        with use_memory_budget("64M"):
            scoped = memory_snapshot()
        assert scoped["memory_budget"] == "64M"

    def test_scaling_curve_records_memory_keys(self):
        points = np.random.default_rng(3).random((100, 2))
        curve = scaling_curve(emst_memogfk, points, thread_counts=(1, 2))
        assert curve["memory_budget"] == "unbounded"
        assert curve["peak_rss_bytes"] is None or curve["peak_rss_bytes"] > 0

    def test_measured_scaling_curve_reports_budget_kwarg(self):
        points = np.random.default_rng(4).random((100, 2))
        curve = measured_scaling_curve(
            emst, points, thread_counts=(1, 2), memory_budget="32M"
        )
        assert curve["memory_budget"] == "32M"
        u0, v0, w0 = curve["results"][0].edges.as_arrays()
        u1, v1, w1 = curve["results"][1].edges.as_arrays()
        assert np.array_equal(u0, u1)
        assert np.array_equal(v0, v1)
        assert np.array_equal(w0, w1)


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.0], ["b", 123456.0]], title="Demo"
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_number_formatting(self):
        text = format_table(["x"], [[0.000123], [12.5], [0]])
        assert "0.000123" in text
        assert "12.5" in text

    def test_format_scaling_series(self):
        text = format_scaling_series("demo", [1, 4, 96], [1.0, 3.5, 20.0])
        assert "demo" in text
        assert "48h" in text  # the final entry renders as hyper-threaded
        assert "3.50x" in text

    def test_phase_breakdown_extracts_time_keys(self):
        stats = {"time_wspd": 1.0, "time_kruskal": 2.0, "rounds": 3}
        breakdown = phase_breakdown(stats)
        assert breakdown == {"wspd": 1.0, "kruskal": 2.0}


class TestLatencyStats:
    def test_keys_and_percentiles(self):
        from repro.bench.harness import latency_stats

        # 100 samples: 1ms..100ms; nearest-rank p50 = 50ms, p99 = 99ms.
        stats = latency_stats([i / 1000 for i in range(1, 101)])
        assert stats["requests"] == 100
        assert stats["latency_p50_s"] == pytest.approx(0.050)
        assert stats["latency_p99_s"] == pytest.approx(0.099)
        assert stats["requests_per_second"] == pytest.approx(
            100 / stats["total_seconds"]
        )

    def test_single_sample(self):
        from repro.bench.harness import latency_stats

        stats = latency_stats([0.25])
        assert stats["latency_p50_s"] == 0.25
        assert stats["latency_p99_s"] == 0.25
        assert stats["requests_per_second"] == pytest.approx(4.0)

    def test_empty_rejected(self):
        from repro.bench.harness import latency_stats

        with pytest.raises(ValueError):
            latency_stats([])

    def test_timed_requests_round_trip(self):
        from repro.bench.harness import timed_requests

        responses, stats = timed_requests(lambda x: x * 2, [1, 2, 3])
        assert responses == [2, 4, 6]
        assert stats["requests"] == 3
        assert stats["latency_p99_s"] >= stats["latency_p50_s"] >= 0.0
