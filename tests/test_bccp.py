"""Tests for BCCP / BCCP*, the batched kernel, and the BCCP cache."""

import numpy as np
import pytest

from repro.core.distance import closest_pair_bruteforce, cross_distances, euclidean
from repro.hdbscan import core_distances
from repro.spatial import KDTree
from repro.wspd import BCCPCache, bccp, bccp_batch, bccp_star
from repro.wspd.wspd import compute_wspd_ids


def _split_nodes(points, leaf_size=32):
    """kd-tree root children: a convenient pair of disjoint nodes."""
    tree = KDTree(points, leaf_size=leaf_size)
    return tree, tree.root.left, tree.root.right


class TestBCCP:
    def test_matches_bruteforce(self, small_points_3d):
        tree, left, right = _split_nodes(small_points_3d)
        result = bccp(tree, left, right)
        _, _, expected = closest_pair_bruteforce(
            small_points_3d[left.indices], small_points_3d[right.indices]
        )
        assert result.distance == pytest.approx(expected)

    def test_endpoints_belong_to_their_nodes(self, small_points_2d):
        tree, left, right = _split_nodes(small_points_2d)
        result = bccp(tree, left, right)
        assert result.point_a in set(left.indices.tolist())
        assert result.point_b in set(right.indices.tolist())

    def test_distance_consistent_with_endpoints(self, small_points_2d):
        tree, left, right = _split_nodes(small_points_2d)
        result = bccp(tree, left, right)
        recomputed = euclidean(
            small_points_2d[result.point_a], small_points_2d[result.point_b]
        )
        assert result.distance == pytest.approx(recomputed)

    def test_as_edge(self, small_points_2d):
        tree, left, right = _split_nodes(small_points_2d)
        result = bccp(tree, left, right)
        u, v, w = result.as_edge()
        assert (u, v, w) == (result.point_a, result.point_b, result.distance)

    def test_singleton_nodes(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        tree = KDTree(points, leaf_size=1)
        leaves = list(tree.leaves())
        result = bccp(tree, leaves[0], leaves[1])
        assert result.distance == pytest.approx(5.0)


class TestBCCPStar:
    def test_against_bruteforce_mutual_reachability(self, small_points_3d):
        core = core_distances(small_points_3d, 8)
        tree, left, right = _split_nodes(small_points_3d)
        result = bccp_star(tree, left, right, core)
        distances = cross_distances(
            small_points_3d[left.indices], small_points_3d[right.indices]
        )
        mutual = np.maximum(
            distances,
            np.maximum(core[left.indices][:, None], core[right.indices][None, :]),
        )
        assert result.distance == pytest.approx(mutual.min())

    def test_bccp_star_at_least_bccp(self, small_points_3d):
        core = core_distances(small_points_3d, 8)
        tree, left, right = _split_nodes(small_points_3d)
        euclidean_result = bccp(tree, left, right)
        mutual_result = bccp_star(tree, left, right, core)
        assert mutual_result.distance >= euclidean_result.distance - 1e-12

    def test_minpts_one_reduces_to_bccp(self, small_points_2d):
        core = np.zeros(len(small_points_2d))
        tree, left, right = _split_nodes(small_points_2d)
        assert bccp_star(tree, left, right, core).distance == pytest.approx(
            bccp(tree, left, right).distance
        )


def _random_frontier(tree, rng, num_pairs):
    """Random node-id pairs with distinct ids (a frontier-shaped workload)."""
    num_nodes = tree.flat.num_nodes
    a = rng.integers(0, num_nodes, size=num_pairs)
    b = rng.integers(0, num_nodes, size=num_pairs)
    keep = a != b
    return a[keep].astype(np.int64), b[keep].astype(np.int64)


class TestBCCPBatch:
    def test_matches_scalar_on_random_frontiers(self):
        rng = np.random.default_rng(0)
        points = rng.random((200, 3))
        tree = KDTree(points, leaf_size=1)
        for seed in range(3):
            a_ids, b_ids = _random_frontier(tree, np.random.default_rng(seed), 300)
            pa, pb, w = bccp_batch(tree.flat, a_ids, b_ids)
            for i in range(a_ids.size):
                ref = bccp(tree, tree.node(int(a_ids[i])), tree.node(int(b_ids[i])))
                assert (int(pa[i]), int(pb[i])) == (ref.point_a, ref.point_b)
                assert float(w[i]) == ref.distance

    def test_matches_scalar_star_on_random_frontiers(self):
        rng = np.random.default_rng(1)
        points = rng.random((150, 2))
        core = core_distances(points, 5)
        tree = KDTree(points, leaf_size=1)
        a_ids, b_ids = _random_frontier(tree, rng, 250)
        pa, pb, w = bccp_batch(tree.flat, a_ids, b_ids, core)
        for i in range(a_ids.size):
            ref = bccp_star(
                tree, tree.node(int(a_ids[i])), tree.node(int(b_ids[i])), core
            )
            assert (int(pa[i]), int(pb[i])) == (ref.point_a, ref.point_b)
            assert float(w[i]) == ref.distance

    def test_matches_scalar_on_wspd_pairs(self):
        points = np.random.default_rng(2).random((120, 2))
        tree = KDTree(points, leaf_size=1)
        a_ids, b_ids = compute_wspd_ids(tree)
        pa, pb, w = bccp_batch(tree.flat, a_ids, b_ids)
        for i in range(a_ids.size):
            ref = bccp(tree, tree.node(int(a_ids[i])), tree.node(int(b_ids[i])))
            assert (int(pa[i]), int(pb[i])) == (ref.point_a, ref.point_b)
            assert float(w[i]) == ref.distance

    def test_duplicate_points_tie_breaking(self):
        # All-identical points: every candidate distance ties at zero and the
        # batched argmin must pick the same (row-major first) entry as the
        # scalar kernel.
        points = np.zeros((16, 2))
        tree = KDTree(points, leaf_size=1)
        a_ids, b_ids = _random_frontier(tree, np.random.default_rng(3), 60)
        pa, pb, w = bccp_batch(tree.flat, a_ids, b_ids)
        for i in range(a_ids.size):
            ref = bccp(tree, tree.node(int(a_ids[i])), tree.node(int(b_ids[i])))
            assert (int(pa[i]), int(pb[i])) == (ref.point_a, ref.point_b)
            assert float(w[i]) == 0.0

    def test_empty_input(self):
        points = np.random.default_rng(4).random((10, 2))
        tree = KDTree(points, leaf_size=1)
        empty = np.empty(0, dtype=np.int64)
        pa, pb, w = bccp_batch(tree.flat, empty, empty)
        assert pa.size == pb.size == w.size == 0

    def test_only_large_pairs(self):
        # Both nodes big enough that the pair takes the unpadded large-pair
        # path (regression: this used to crash the empty small-class loop).
        points = np.random.default_rng(8).random((400, 2))
        tree = KDTree(points, leaf_size=1)
        flat = tree.flat
        a = np.array([flat.left_child[0]], dtype=np.int64)
        b = np.array([flat.right_child[0]], dtype=np.int64)
        assert int(flat.node_sizes[a[0]] * flat.node_sizes[b[0]]) >= 16_384
        pa, pb, w = bccp_batch(flat, a, b)
        ref = bccp(tree, tree.node(int(a[0])), tree.node(int(b[0])))
        assert (int(pa[0]), int(pb[0]), float(w[0])) == (
            ref.point_a,
            ref.point_b,
            ref.distance,
        )


class TestBCCPCache:
    def test_get_batch_matches_scalar_gets(self, small_points_2d):
        tree = KDTree(small_points_2d, leaf_size=1)
        rng = np.random.default_rng(5)
        a_ids, b_ids = _random_frontier(tree, rng, 120)
        batch_cache = BCCPCache(tree)
        pa, pb, w = batch_cache.get_batch(a_ids, b_ids)
        scalar_cache = BCCPCache(tree)
        for i in range(a_ids.size):
            ref = scalar_cache.get(tree.node(int(a_ids[i])), tree.node(int(b_ids[i])))
            assert (int(pa[i]), int(pb[i]), float(w[i])) == (
                ref.point_a,
                ref.point_b,
                ref.distance,
            )
        assert batch_cache.num_bccp_calls == scalar_cache.num_bccp_calls
        assert (
            batch_cache.num_distance_evaluations
            == scalar_cache.num_distance_evaluations
        )

    def test_get_batch_hit_miss_partition(self, small_points_2d):
        tree = KDTree(small_points_2d, leaf_size=1)
        cache = BCCPCache(tree)
        rng = np.random.default_rng(6)
        first_a, first_b = _random_frontier(tree, rng, 80)
        cache.get_batch(first_a, first_b)
        calls_after_first = cache.num_bccp_calls
        # Re-submit the same pairs (some swapped) mixed with fresh ones: only
        # the fresh unique pairs may trigger kernel evaluations.
        fresh_a, fresh_b = _random_frontier(tree, np.random.default_rng(7), 40)
        mixed_a = np.concatenate([first_b, fresh_a])  # swapped orientation
        mixed_b = np.concatenate([first_a, fresh_b])
        cache.get_batch(mixed_a, mixed_b)
        known = set(zip(*(np.minimum(first_a, first_b), np.maximum(first_a, first_b))))
        fresh_keys = set(
            zip(*(np.minimum(fresh_a, fresh_b), np.maximum(fresh_a, fresh_b)))
        )
        expected_new = len(fresh_keys - known)
        assert cache.num_bccp_calls == calls_after_first + expected_new

    def test_get_batch_duplicate_pairs_evaluated_once(self, small_points_2d):
        tree = KDTree(small_points_2d, leaf_size=1)
        cache = BCCPCache(tree)
        a = np.array([1, 2, 1, 2, 1], dtype=np.int64)
        b = np.array([2, 1, 2, 1, 2], dtype=np.int64)
        pa, pb, w = cache.get_batch(a, b)
        assert cache.num_bccp_calls == 1
        assert np.unique(pa).size == 1 and np.unique(pb).size == 1
        assert np.unique(w).size == 1

    def test_caches_results(self, small_points_2d):
        tree, left, right = _split_nodes(small_points_2d)
        cache = BCCPCache(tree)
        first = cache.get(left, right)
        second = cache.get(left, right)
        assert first == second
        assert cache.num_bccp_calls == 1

    def test_symmetric_key(self, small_points_2d):
        tree, left, right = _split_nodes(small_points_2d)
        cache = BCCPCache(tree)
        cache.get(left, right)
        cache.get(right, left)
        assert cache.num_bccp_calls == 1

    def test_counts_distance_evaluations(self, small_points_2d):
        tree, left, right = _split_nodes(small_points_2d)
        cache = BCCPCache(tree)
        cache.get(left, right)
        assert cache.num_distance_evaluations == left.size * right.size

    def test_mutual_reachability_mode(self, small_points_3d):
        core = core_distances(small_points_3d, 5)
        tree, left, right = _split_nodes(small_points_3d)
        cache = BCCPCache(tree, core_distances=core)
        assert cache.uses_mutual_reachability
        assert cache.get(left, right).distance == pytest.approx(
            bccp_star(tree, left, right, core).distance
        )

    def test_len_reports_cached_pairs(self, small_points_2d):
        tree, left, right = _split_nodes(small_points_2d)
        cache = BCCPCache(tree)
        assert len(cache) == 0
        cache.get(left, right)
        assert len(cache) == 1
