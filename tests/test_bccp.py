"""Tests for BCCP / BCCP* and the BCCP cache."""

import numpy as np
import pytest

from repro.core.distance import closest_pair_bruteforce, cross_distances, euclidean
from repro.hdbscan import core_distances
from repro.spatial import KDTree
from repro.wspd import BCCPCache, bccp, bccp_star


def _split_nodes(points, leaf_size=32):
    """kd-tree root children: a convenient pair of disjoint nodes."""
    tree = KDTree(points, leaf_size=leaf_size)
    return tree, tree.root.left, tree.root.right


class TestBCCP:
    def test_matches_bruteforce(self, small_points_3d):
        tree, left, right = _split_nodes(small_points_3d)
        result = bccp(tree, left, right)
        _, _, expected = closest_pair_bruteforce(
            small_points_3d[left.indices], small_points_3d[right.indices]
        )
        assert result.distance == pytest.approx(expected)

    def test_endpoints_belong_to_their_nodes(self, small_points_2d):
        tree, left, right = _split_nodes(small_points_2d)
        result = bccp(tree, left, right)
        assert result.point_a in set(left.indices.tolist())
        assert result.point_b in set(right.indices.tolist())

    def test_distance_consistent_with_endpoints(self, small_points_2d):
        tree, left, right = _split_nodes(small_points_2d)
        result = bccp(tree, left, right)
        recomputed = euclidean(
            small_points_2d[result.point_a], small_points_2d[result.point_b]
        )
        assert result.distance == pytest.approx(recomputed)

    def test_as_edge(self, small_points_2d):
        tree, left, right = _split_nodes(small_points_2d)
        result = bccp(tree, left, right)
        u, v, w = result.as_edge()
        assert (u, v, w) == (result.point_a, result.point_b, result.distance)

    def test_singleton_nodes(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        tree = KDTree(points, leaf_size=1)
        leaves = list(tree.leaves())
        result = bccp(tree, leaves[0], leaves[1])
        assert result.distance == pytest.approx(5.0)


class TestBCCPStar:
    def test_against_bruteforce_mutual_reachability(self, small_points_3d):
        core = core_distances(small_points_3d, 8)
        tree, left, right = _split_nodes(small_points_3d)
        result = bccp_star(tree, left, right, core)
        distances = cross_distances(
            small_points_3d[left.indices], small_points_3d[right.indices]
        )
        mutual = np.maximum(
            distances,
            np.maximum(core[left.indices][:, None], core[right.indices][None, :]),
        )
        assert result.distance == pytest.approx(mutual.min())

    def test_bccp_star_at_least_bccp(self, small_points_3d):
        core = core_distances(small_points_3d, 8)
        tree, left, right = _split_nodes(small_points_3d)
        euclidean_result = bccp(tree, left, right)
        mutual_result = bccp_star(tree, left, right, core)
        assert mutual_result.distance >= euclidean_result.distance - 1e-12

    def test_minpts_one_reduces_to_bccp(self, small_points_2d):
        core = np.zeros(len(small_points_2d))
        tree, left, right = _split_nodes(small_points_2d)
        assert bccp_star(tree, left, right, core).distance == pytest.approx(
            bccp(tree, left, right).distance
        )


class TestBCCPCache:
    def test_caches_results(self, small_points_2d):
        tree, left, right = _split_nodes(small_points_2d)
        cache = BCCPCache(tree)
        first = cache.get(left, right)
        second = cache.get(left, right)
        assert first is second
        assert cache.num_bccp_calls == 1

    def test_symmetric_key(self, small_points_2d):
        tree, left, right = _split_nodes(small_points_2d)
        cache = BCCPCache(tree)
        cache.get(left, right)
        cache.get(right, left)
        assert cache.num_bccp_calls == 1

    def test_counts_distance_evaluations(self, small_points_2d):
        tree, left, right = _split_nodes(small_points_2d)
        cache = BCCPCache(tree)
        cache.get(left, right)
        assert cache.num_distance_evaluations == left.size * right.size

    def test_mutual_reachability_mode(self, small_points_3d):
        core = core_distances(small_points_3d, 5)
        tree, left, right = _split_nodes(small_points_3d)
        cache = BCCPCache(tree, core_distances=core)
        assert cache.uses_mutual_reachability
        assert cache.get(left, right).distance == pytest.approx(
            bccp_star(tree, left, right, core).distance
        )

    def test_len_reports_cached_pairs(self, small_points_2d):
        tree, left, right = _split_nodes(small_points_2d)
        cache = BCCPCache(tree)
        assert len(cache) == 0
        cache.get(left, right)
        assert len(cache) == 1
