"""Thread-count determinism of every threaded driver, plus pool lifecycle.

The multicore execution engine's contract is that sharding is deterministic:
fixed chunk boundaries and stable, shard-ordered reductions make every
threaded run byte-identical to the single-threaded one.  These tests pin that
contract down for the GFK and MemoGFK EMST drivers, both HDBSCAN* drivers,
the kNN paths and the parallel Kruskal argsort, and exercise the
:class:`~repro.parallel.pool.WorkerPool` lifecycle (worker reuse, shutdown,
exception propagation, workspace buffer reuse).
"""

import threading

import numpy as np
import pytest

from repro.emst import emst_gfk, emst_memogfk
from repro.hdbscan import hdbscan
from repro.mst.kruskal import parallel_argsort
from repro.parallel.pool import (
    WorkerPool,
    Workspace,
    current_workspace,
    get_pool,
    map_shards,
    shard_ranges,
)
from repro.spatial import KDTree, knn, knn_bruteforce

THREAD_COUNTS = [1, 2, 4]


@pytest.fixture(scope="module")
def cluster_points():
    rng = np.random.default_rng(42)
    blob_a = rng.normal(0.0, 0.05, size=(220, 2))
    blob_b = rng.normal(1.0, 0.08, size=(220, 2))
    noise = rng.uniform(-1.0, 2.0, size=(60, 2))
    return np.vstack([blob_a, blob_b, noise])


def _edge_arrays(result):
    return result.edges.as_arrays()


class TestEmstThreadDeterminism:
    @pytest.mark.parametrize("num_threads", THREAD_COUNTS)
    @pytest.mark.parametrize("driver", [emst_gfk, emst_memogfk], ids=["gfk", "memogfk"])
    def test_edge_lists_byte_identical(self, cluster_points, driver, num_threads):
        baseline = driver(cluster_points)
        threaded = driver(cluster_points, num_threads=num_threads)
        for base_col, threaded_col in zip(
            _edge_arrays(baseline), _edge_arrays(threaded)
        ):
            assert np.array_equal(base_col, threaded_col)

    def test_gfk_and_memogfk_weights_agree_threaded(self, cluster_points):
        gfk = emst_gfk(cluster_points, num_threads=2)
        memo = emst_memogfk(cluster_points, num_threads=4)
        assert gfk.total_weight == pytest.approx(memo.total_weight, rel=0, abs=0)


class TestHdbscanThreadDeterminism:
    @pytest.mark.parametrize("num_threads", THREAD_COUNTS)
    @pytest.mark.parametrize("method", ["gantao", "memogfk"])
    def test_mst_and_dendrogram_byte_identical(
        self, cluster_points, method, num_threads
    ):
        baseline = hdbscan(cluster_points, min_pts=5, method=method)
        threaded = hdbscan(
            cluster_points, min_pts=5, method=method, num_threads=num_threads
        )
        assert np.array_equal(baseline.core_distances, threaded.core_distances)
        for base_col, threaded_col in zip(
            _edge_arrays(baseline.mst), _edge_arrays(threaded.mst)
        ):
            assert np.array_equal(base_col, threaded_col)
        assert np.array_equal(
            baseline.dendrogram.to_linkage_matrix(),
            threaded.dendrogram.to_linkage_matrix(),
        )
        assert np.array_equal(
            baseline.eom_labels(min_cluster_size=10),
            threaded.eom_labels(min_cluster_size=10),
        )


class TestKnnThreadDeterminism:
    @pytest.mark.parametrize("num_threads", THREAD_COUNTS)
    def test_tree_knn_identical(self, cluster_points, num_threads):
        tree = KDTree(cluster_points, leaf_size=4)
        base_idx, base_dist = knn(tree, 6)
        idx, dist = knn(tree, 6, num_threads=num_threads)
        assert np.array_equal(base_idx, idx)
        assert np.array_equal(base_dist, dist)

    @pytest.mark.parametrize("num_threads", THREAD_COUNTS)
    def test_bruteforce_knn_identical(self, cluster_points, num_threads):
        base_idx, base_dist = knn_bruteforce(cluster_points, 6)
        idx, dist = knn_bruteforce(cluster_points, 6, num_threads=num_threads)
        assert np.array_equal(base_idx, idx)
        assert np.array_equal(base_dist, dist)

    def test_bruteforce_auto_chunk_matches_explicit(self, cluster_points):
        # Different chunk sizes may round the BLAS cross terms differently
        # (that was already true before auto-sizing), so this is allclose;
        # bit-identity is only promised across *thread counts* at a fixed
        # chunking, which the tests above pin down.
        auto_idx, auto_dist = knn_bruteforce(cluster_points, 5)
        explicit_idx, explicit_dist = knn_bruteforce(cluster_points, 5, chunk_size=13)
        assert np.array_equal(auto_idx, explicit_idx)
        assert np.allclose(auto_dist, explicit_dist, rtol=1e-12, atol=1e-12)


class TestParallelArgsort:
    @pytest.mark.parametrize("size", [0, 5, 70_000, 131_072, 200_001])
    @pytest.mark.parametrize("num_threads", [1, 2, 4])
    def test_matches_stable_argsort_with_ties(self, size, num_threads):
        rng = np.random.default_rng(size + num_threads)
        weights = rng.integers(0, 37, size).astype(np.float64)
        expected = np.argsort(weights, kind="stable")
        assert np.array_equal(
            parallel_argsort(weights, num_threads=num_threads), expected
        )


class TestShardedPathsEngage:
    """Byte-identity with the sharded branches *actually running*.

    At test scale the production chunk thresholds keep most sharded paths on
    their inline fallback, so the driver tests above would pass even with a
    broken shard kernel.  Here the thresholds are lowered (they are read at
    call time for exactly this purpose) so a 500-point run shards its
    frontier masks, bound sweeps, sort chunks, k-NN blocks and BCCP tasks
    across a real 4-worker pool — and must still match the unsharded
    single-thread run bit for bit.
    """

    @pytest.fixture()
    def tiny_chunks(self, monkeypatch):
        # sys.modules lookups: the package attributes `repro.mst.kruskal` /
        # `repro.wspd.bccp` are shadowed by the re-exported functions.
        import importlib

        pool_module = importlib.import_module("repro.parallel.pool")
        kruskal_module = importlib.import_module("repro.mst.kruskal")
        knn_module = importlib.import_module("repro.spatial.knn")
        bccp_module = importlib.import_module("repro.wspd.bccp")

        monkeypatch.setattr(pool_module, "DEFAULT_CHUNK", 64)
        monkeypatch.setattr(kruskal_module, "_SORT_CHUNK", 32)
        monkeypatch.setattr(knn_module, "_CHUNK_BUDGET_BYTES", 1 << 12)
        monkeypatch.setattr(bccp_module, "_LARGE_PAIR_ELEMENTS", 256)

    @pytest.mark.parametrize("driver", [emst_gfk, emst_memogfk], ids=["gfk", "memogfk"])
    def test_emst_sharded_matches_inline(self, cluster_points, tiny_chunks, driver):
        inline = driver(cluster_points)
        sharded = driver(cluster_points, num_threads=4)
        for inline_col, sharded_col in zip(_edge_arrays(inline), _edge_arrays(sharded)):
            assert np.array_equal(inline_col, sharded_col)

    @pytest.mark.parametrize("method", ["gantao", "memogfk"])
    def test_hdbscan_sharded_matches_inline(self, cluster_points, tiny_chunks, method):
        inline = hdbscan(cluster_points, min_pts=5, method=method)
        sharded = hdbscan(cluster_points, min_pts=5, method=method, num_threads=4)
        assert np.array_equal(inline.core_distances, sharded.core_distances)
        for inline_col, sharded_col in zip(
            _edge_arrays(inline.mst), _edge_arrays(sharded.mst)
        ):
            assert np.array_equal(inline_col, sharded_col)
        assert np.array_equal(
            inline.dendrogram.to_linkage_matrix(),
            sharded.dendrogram.to_linkage_matrix(),
        )

    def test_knn_sharded_blocks_match(self, cluster_points, tiny_chunks):
        tree = KDTree(cluster_points, leaf_size=4)
        inline_idx, inline_dist = knn(tree, 6)
        sharded_idx, sharded_dist = knn(tree, 6, num_threads=4)
        assert np.array_equal(inline_idx, sharded_idx)
        assert np.array_equal(inline_dist, sharded_dist)


class TestWorkerPoolLifecycle:
    def test_map_preserves_order_and_reuses_workers(self):
        with WorkerPool(2) as pool:
            first = pool.map(lambda item: threading.get_ident(), range(64))
            second = pool.map(lambda item: threading.get_ident(), range(64))
            # Same two threads serve every map: no spawning after the first.
            assert pool.workers_started == 2
            worker_idents = {thread.ident for thread in pool._threads}
            assert set(first) <= worker_idents
            assert set(second) <= worker_idents
            assert threading.get_ident() not in worker_idents
            squares = pool.map(lambda item: item * item, range(100))
            assert squares == [item * item for item in range(100)]

    def test_single_worker_runs_inline(self):
        with WorkerPool(1) as pool:
            idents = pool.map(lambda item: threading.get_ident(), range(8))
            assert set(idents) == {threading.get_ident()}
            assert pool.workers_started == 0

    def test_shutdown_stops_workers_and_rejects_maps(self):
        pool = WorkerPool(2)
        pool.map(lambda item: item, range(8))
        threads = list(pool._threads)
        pool.shutdown()
        for thread in threads:
            assert not thread.is_alive()
        with pytest.raises(RuntimeError):
            pool.map(lambda item: item, range(8))
        # The inline fast paths observe shutdown too.
        with pytest.raises(RuntimeError):
            pool.map(lambda item: item, [1])
        single = WorkerPool(1)
        single.shutdown()
        with pytest.raises(RuntimeError):
            single.map(lambda item: item, range(4))
        pool.shutdown()  # idempotent

    def test_exception_propagates_after_batch_drains(self):
        class Boom(RuntimeError):
            pass

        def explode(item):
            if item == 13:
                raise Boom("task 13 failed")
            return item

        with WorkerPool(3) as pool:
            with pytest.raises(Boom, match="task 13 failed"):
                pool.map(explode, range(64))
            # The pool survives a failed batch.
            assert pool.map(lambda item: -item, [1, 2, 3]) == [-1, -2, -3]

    def test_get_pool_is_cached_per_thread_count(self):
        assert get_pool(3) is get_pool(3)
        assert get_pool(3) is not get_pool(2)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class TestWorkspace:
    def test_take_reuses_grown_buffer(self):
        workspace = Workspace()
        big = workspace.take("scratch", (64, 8))
        small = workspace.take("scratch", (16, 4))
        assert np.shares_memory(big, small)
        assert small.shape == (16, 4)

    def test_distinct_keys_and_dtypes_do_not_alias(self):
        workspace = Workspace()
        a = workspace.take("a", (32,))
        b = workspace.take("b", (32,))
        c = workspace.take("a", (32,), dtype=np.int64)
        assert not np.shares_memory(a, b)
        assert not np.shares_memory(a, c)

    def test_workers_get_their_own_workspace(self):
        main_workspace = current_workspace()
        with WorkerPool(2) as pool:
            worker_spaces = pool.map(lambda item: id(current_workspace()), range(32))
        assert id(main_workspace) not in set(worker_spaces)
        # Each worker keeps one workspace across tasks: at most two distinct.
        assert len(set(worker_spaces)) <= 2


class TestShardHelpers:
    def test_shard_ranges_fixed_boundaries(self):
        spans = shard_ranges(10, 4)
        assert spans == [(0, 4), (4, 8), (8, 10)]
        assert shard_ranges(0, 4) == []

    @pytest.mark.parametrize("num_threads", [1, 4])
    def test_map_shards_orders_results_by_shard(self, num_threads):
        totals = map_shards(
            lambda lo, hi: (lo, hi), 100, num_threads=num_threads, chunk_size=7
        )
        assert totals == shard_ranges(100, 7)
