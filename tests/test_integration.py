"""End-to-end integration tests across subsystems and datasets."""

import numpy as np
import pytest

from conformance import EXACT_EMST_METHODS, assert_same_tree, skip_unless_supported
from repro import emst, hdbscan, single_linkage
from repro.bench import run_with_tracker
from repro.datasets import gaussian_blobs, load_dataset, seed_spreader
from repro.dendrogram import dbscan_star_labels
from repro.emst import emst_bruteforce
from repro.hdbscan import hdbscan_mst_bruteforce


class TestEndToEndOnRegisteredDatasets:
    @pytest.mark.parametrize(
        "name", ["2D-UniformFill", "3D-SS-varden", "3D-GeoLife", "7D-Household"]
    )
    def test_emst_matches_bruteforce_on_small_samples(self, name):
        points = load_dataset(name, n=150, seed=1)
        expected = emst_bruteforce(points).total_weight
        result = emst(points)
        assert result.total_weight == pytest.approx(expected, rel=1e-9)

    @pytest.mark.parametrize("name", ["2D-SS-varden", "10D-HT", "16D-CHEM"])
    def test_hdbscan_matches_bruteforce_on_small_samples(self, name):
        points = load_dataset(name, n=120, seed=2)
        expected = hdbscan_mst_bruteforce(points, 10).total_weight
        result = hdbscan(points, min_pts=10)
        assert result.mst.total_weight == pytest.approx(expected, rel=1e-9)


class TestClusteringQuality:
    def test_single_linkage_recovers_separated_blobs(self):
        points, truth = gaussian_blobs(
            240, 2, num_clusters=3, cluster_std=0.01, seed=3, return_labels=True
        )
        result = single_linkage(points)
        labels = result.labels_k(3)
        # Perfect recovery up to label permutation: each true cluster maps to
        # exactly one predicted label and vice versa.
        mapping = {}
        for true_label in range(3):
            predicted = set(labels[truth == true_label].tolist())
            assert len(predicted) == 1
            mapping[true_label] = predicted.pop()
        assert len(set(mapping.values())) == 3

    def test_hdbscan_identifies_noise_in_varden_data(self):
        points = seed_spreader(400, 2, seed=4, noise_fraction=0.05)
        result = hdbscan(points, min_pts=10)
        core = result.core_distances
        labels = result.dbscan_labels(float(np.percentile(core, 70)), min_cluster_size=5)
        # Some points are clustered and some are noise at this cut.
        assert np.any(labels >= 0)
        assert np.any(labels == -1)

    def test_hdbscan_and_single_linkage_coincide_for_minpts_1(self):
        points = gaussian_blobs(150, 2, num_clusters=2, seed=5)
        sl = single_linkage(points)
        hd = hdbscan(points, min_pts=1)
        assert hd.mst.total_weight == pytest.approx(sl.emst.total_weight, rel=1e-9)


class TestDifferentMethodsAgreeEndToEnd:
    # The method × metric × threads × dtype agreement matrix lives in
    # tests/test_conformance.py; this spot-check covers a dataset shape the
    # matrix does not (200 points from a different seed) via the same
    # helpers.
    @pytest.mark.parametrize("method", EXACT_EMST_METHODS)
    def test_emst_methods_identical_edges_for_distinct_weights(self, method):
        points = np.random.default_rng(6).random((200, 2))
        skip_unless_supported(method, "euclidean", points.shape[1])
        assert_same_tree(emst(points, method=method), emst(points, method="naive"))

    def test_hdbscan_gantao_and_memogfk_same_dbscan_clusters(self):
        points = seed_spreader(300, 2, seed=7)
        result_a = hdbscan(points, min_pts=10, method="gantao")
        result_b = hdbscan(points, min_pts=10, method="memogfk")
        epsilon = float(np.percentile(result_a.core_distances, 60))
        labels_a = result_a.dbscan_labels(epsilon)
        labels_b = result_b.dbscan_labels(epsilon)
        # Same partition up to renaming.
        assert np.array_equal(labels_a == -1, labels_b == -1)
        for i in range(0, 300, 17):
            for j in range(0, 300, 23):
                if labels_a[i] >= 0 and labels_a[j] >= 0:
                    assert (labels_a[i] == labels_a[j]) == (labels_b[i] == labels_b[j])


class TestWorkDepthInstrumentation:
    def test_emst_under_tracker_reports_quadratic_work_at_most(self):
        points = np.random.default_rng(8).random((150, 3))
        result, tracker, _ = run_with_tracker(emst, points)
        assert result.is_spanning_tree()
        n = 150
        assert tracker.work <= 50.0 * n * n  # O(n^2) with a modest constant
        assert tracker.depth <= tracker.work / 10.0  # far more work than depth

    def test_hdbscan_under_tracker_records_phases(self):
        points = np.random.default_rng(9).random((120, 2))
        result, tracker, _ = run_with_tracker(hdbscan, points, 5)
        phases = tracker.phase_work
        assert "knn" in phases
        assert "wspd" in phases
        assert "kruskal" in phases
        assert "dendrogram" in phases


class TestRobustness:
    def test_identical_points_cluster_together(self):
        points = np.vstack([np.zeros((20, 2)), np.ones((20, 2)) * 10.0])
        result = hdbscan(points, min_pts=5)
        labels = result.dbscan_labels(1.0)
        assert len(set(labels[:20].tolist())) == 1
        assert len(set(labels[20:].tolist())) == 1
        assert labels[0] != labels[-1]

    def test_highly_skewed_scales(self):
        rng = np.random.default_rng(10)
        near = rng.normal(0.0, 1e-6, size=(50, 2))
        far = rng.normal(1e6, 1.0, size=(50, 2))
        points = np.vstack([near, far])
        expected = emst_bruteforce(points).total_weight
        assert emst(points).total_weight == pytest.approx(expected, rel=1e-6)

    def test_one_dimensional_data(self):
        points = np.sort(np.random.default_rng(11).random((100, 1)), axis=0)
        result = emst(points)
        # In 1-d the EMST is the sorted chain: total weight = max - min.
        assert result.total_weight == pytest.approx(float(points[-1, 0] - points[0, 0]))

    def test_dbscan_labels_standalone_function(self):
        points = gaussian_blobs(100, 2, num_clusters=2, cluster_std=0.01, seed=12)
        result = hdbscan(points, min_pts=5)
        labels = dbscan_star_labels(result.mst.edges, result.core_distances, 0.5)
        assert labels.shape == (100,)
