"""The engine-wide memory budget: parsing, tiling, spilling, identity.

Pins the contracts of :mod:`repro.core.budget` and its integration through
the engine:

* the one shared size parser (CLI flag + estimator validation) and its
  fail-fast behaviour on nonsense;
* tile sizing: defaults preserved when unbounded, bounded shares when not,
  clamping (never erroring) below the tile floor;
* the growable-container growth policy (capacity doubling, explicit
  ``shrink_to_fit``) and spill-to-disk mode for :class:`EdgeList` and
  :class:`BCCPCache`;
* end-to-end byte-identity of ``emst``/``hdbscan`` under any budget,
  including memory-mapped inputs;
* the plumbing: estimators, CLI flag, ambient scoping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.budget import (
    MIN_TILE_BYTES,
    MemoryBudget,
    UNBOUNDED,
    current_memory_budget,
    format_memory_size,
    parse_memory_size,
    resolve_memory_budget,
    set_default_memory_budget,
    use_memory_budget,
)
from repro.core.errors import InvalidParameterError, InvalidPointSetError
from repro.core.points import open_memmap_points
from repro.emst.api import emst
from repro.estimators import EMST, HDBSCAN
from repro.hdbscan.api import hdbscan
from repro.mst.edges import EdgeList
from repro.spatial.kdtree import KDTree
from repro.wspd.bccp import BCCPCache


@pytest.fixture
def points():
    return np.random.default_rng(99).random((300, 3))


class TestParseMemorySize:
    @pytest.mark.parametrize(
        "spec, expected",
        [
            ("512", 512),
            ("64K", 64 << 10),
            ("512M", 512 << 20),
            ("2G", 2 << 30),
            ("1T", 1 << 40),
            ("512MB", 512 << 20),
            ("1.5G", int(1.5 * (1 << 30))),
            (" 2g ", 2 << 30),
            (4096, 4096),
            (2.0e9, 2_000_000_000),
        ],
    )
    def test_valid(self, spec, expected):
        assert parse_memory_size(spec) == expected

    @pytest.mark.parametrize(
        "spec", ["12X", "", "-5M", "0", "M", "five hundred", None, True, [], 0, -1]
    )
    def test_invalid_fails_fast(self, spec):
        with pytest.raises(InvalidParameterError):
            parse_memory_size(spec)

    def test_format_round_trips(self):
        assert format_memory_size(None) == "unbounded"
        assert format_memory_size(512 << 20) == "512M"
        assert format_memory_size(2 << 30) == "2G"
        assert format_memory_size(1000) == "1000"
        assert parse_memory_size(format_memory_size(512 << 20)) == 512 << 20


class TestMemoryBudget:
    def test_unbounded_returns_defaults_verbatim(self):
        budget = MemoryBudget(None)
        assert not budget.bounded
        assert budget.spec() == "unbounded"
        assert budget.tile_bytes(12345) == 12345
        assert budget.tile_rows(100, default_bytes=5000) == 50
        assert budget.tile_elements(np.float64, default_elements=777) == 777

    def test_bounded_tile_share(self):
        budget = MemoryBudget("64M")
        # One tile gets at most a quarter of the unreserved remainder.
        assert budget.tile_bytes(1 << 30) <= (64 << 20) // 4
        # A default below the share is a ceiling, not a target (down to the
        # MIN_TILE_BYTES floor, which even smaller defaults clamp up to).
        assert budget.tile_bytes(128 << 10) == 128 << 10
        assert budget.tile_bytes(1 << 10) == MIN_TILE_BYTES

    def test_tiny_budget_clamps_at_floor(self):
        budget = MemoryBudget(1)
        assert budget.tile_bytes(1 << 30) == MIN_TILE_BYTES
        assert budget.tile_rows(1 << 40, default_bytes=1 << 30, minimum=7) == 7

    def test_parts_split_the_share(self):
        budget = MemoryBudget("64M")
        whole = budget.tile_bytes(1 << 30, parts=1)
        split = budget.tile_bytes(1 << 30, parts=4)
        assert split <= whole // 4 or split == MIN_TILE_BYTES

    def test_reservations_subtract_from_tiles(self):
        budget = MemoryBudget("64M")
        unreserved = budget.tile_bytes(1 << 30)
        budget.reserve("points", 32 << 20)
        assert budget.reserved_bytes == 32 << 20
        assert budget.reservations == {"points": 32 << 20}
        assert budget.tile_bytes(1 << 30) < unreserved
        budget.release("points")
        assert budget.tile_bytes(1 << 30) == unreserved
        budget.release("never-reserved")  # ignored, not an error

    def test_reserve_is_idempotent_per_component(self):
        budget = MemoryBudget("64M")
        budget.reserve("cache", 1 << 20)
        budget.reserve("cache", 2 << 20)
        assert budget.reserved_bytes == 2 << 20

    def test_available_bytes_never_below_floor(self):
        budget = MemoryBudget("1M")
        budget.reserve("points", 10 << 20)
        assert budget.available_bytes() == MIN_TILE_BYTES
        with pytest.raises(InvalidParameterError):
            MemoryBudget(None).available_bytes()

    def test_peak_tracks_grants_and_notes(self):
        budget = MemoryBudget("64M")
        assert budget.peak_bytes == 0
        budget.tile_bytes(1 << 20)
        first = budget.peak_bytes
        assert first >= 1 << 20
        budget.note_allocation(32 << 20)
        assert budget.peak_bytes >= 32 << 20
        budget.note_allocation(1)  # high-water mark never decreases
        assert budget.peak_bytes >= 32 << 20

    def test_unbounded_singleton_stays_stateless(self):
        UNBOUNDED.note_allocation(1 << 30)
        assert UNBOUNDED.peak_bytes == 0

    def test_allocate_spills_past_threshold(self):
        budget = MemoryBudget("1M", spill_threshold=1 << 10)
        small = budget.allocate(8, np.float64)
        assert isinstance(small, np.ndarray)
        assert not isinstance(small, np.memmap)
        big = budget.allocate(1 << 12, np.float64)
        assert isinstance(big, np.memmap)
        big[:] = 7.5
        assert float(big[123]) == 7.5
        assert budget.spilled_buffers == 1
        assert budget.spilled_bytes == (1 << 12) * 8

    def test_unbounded_never_spills(self):
        assert not MemoryBudget(None).wants_spill(1 << 40)
        buffer = MemoryBudget(None).allocate(1 << 12, np.float64)
        assert not isinstance(buffer, np.memmap)


class TestResolutionAndScoping:
    def test_resolve_accepts_all_budget_likes(self):
        assert resolve_memory_budget(None) is current_memory_budget()
        budget = MemoryBudget("2G")
        assert resolve_memory_budget(budget) is budget
        assert resolve_memory_budget("512M").total_bytes == 512 << 20
        assert resolve_memory_budget(4096).total_bytes == 4096

    @pytest.mark.parametrize("bad", ["12X", True, 2.5, object()])
    def test_resolve_rejects_nonsense(self, bad):
        with pytest.raises(InvalidParameterError):
            resolve_memory_budget(bad)

    def test_use_memory_budget_scopes_and_restores(self):
        assert current_memory_budget() is UNBOUNDED
        with use_memory_budget("16M") as budget:
            assert current_memory_budget() is budget
            assert budget.total_bytes == 16 << 20
            with use_memory_budget(None):  # None keeps the current scope
                assert current_memory_budget() is budget
        assert current_memory_budget() is UNBOUNDED

    def test_set_default_memory_budget(self):
        try:
            budget = set_default_memory_budget("8M")
            assert current_memory_budget() is budget
        finally:
            set_default_memory_budget(None)
        assert current_memory_budget() is UNBOUNDED


class TestEdgeListGrowthPolicy:
    def test_capacity_doubles_and_bounds_overallocation(self):
        edges = EdgeList()
        assert edges.capacity == 16
        for i in range(17):
            edges.append(i, i + 1, float(i))
        assert edges.capacity == 32
        # After any batch append, capacity < 2x the live count (plus the
        # initial floor for tiny lists).
        edges.extend_arrays(
            np.arange(100), np.arange(100) + 1, np.ones(100)
        )
        assert len(edges) == 117
        assert edges.capacity == 128
        assert edges.capacity < 2 * len(edges)

    def test_shrink_to_fit_releases_overallocation(self):
        edges = EdgeList()
        edges.extend_arrays(np.arange(100), np.arange(100) + 1, np.ones(100))
        before = edges.nbytes
        view_u, view_v, view_w = edges.as_arrays()
        edges.shrink_to_fit()
        assert edges.nbytes < before
        assert edges.capacity == len(edges)
        # Views handed out before the shrink stay valid and unchanged.
        assert np.array_equal(view_u, np.arange(100))
        u, v, w = edges.as_arrays()
        assert np.array_equal(u, view_u)
        assert np.array_equal(w, view_w)

    def test_spill_mode_is_behaviourally_identical(self):
        with use_memory_budget(MemoryBudget("1M", spill_threshold=256)):
            spilled = EdgeList()
            spilled.extend_arrays(np.arange(500), np.arange(500) + 1, np.ones(500))
            budget = current_memory_budget()
            assert budget.spilled_buffers > 0
        plain = EdgeList()
        plain.extend_arrays(np.arange(500), np.arange(500) + 1, np.ones(500))
        for left, right in zip(spilled.as_arrays(), plain.as_arrays()):
            assert np.array_equal(left, right)
        assert spilled[13] == plain[13]
        assert len(spilled) == len(plain)


class TestBCCPCacheGrowthPolicy:
    @staticmethod
    def _frontier():
        points = np.random.default_rng(5).random((64, 2))
        tree = KDTree(points, leaf_size=4)
        leaves = tree.flat.leaf_ids()
        a_ids = np.repeat(leaves, 2)
        b_ids = np.roll(a_ids, 3)
        keep = a_ids != b_ids
        return tree, a_ids[keep], b_ids[keep]

    def test_nbytes_is_exact_capacity_equals_live_count(self):
        tree, a_ids, b_ids = self._frontier()
        cache = BCCPCache(tree)
        cache.get_batch(a_ids, b_ids)
        # Four parallel columns (int64 keys/endpoints + float64 weights) with
        # no over-allocation: capacity always equals the live count.
        assert cache.nbytes == len(cache) * 4 * 8

    def test_spill_mode_preserves_results_and_reserves(self):
        tree, a_ids, b_ids = self._frontier()
        with use_memory_budget(MemoryBudget("1M", spill_threshold=1)):
            spilled_cache = BCCPCache(tree)
            results_spilled = spilled_cache.get_batch(a_ids, b_ids)
            budget = current_memory_budget()
            assert budget.spilled_buffers > 0
            assert budget.reservations["bccp_cache"] == spilled_cache.nbytes
        plain_cache = BCCPCache(tree)
        results_plain = plain_cache.get_batch(a_ids, b_ids)
        for left, right in zip(results_spilled, results_plain):
            assert np.array_equal(left, right)
        # Cached pairs are served from the spilled store identically too.
        again = spilled_cache.get_batch(a_ids, b_ids)
        for left, right in zip(again, results_plain):
            assert np.array_equal(left, right)


class TestEndToEndIdentity:
    BUDGETS = ("64M", "1M", 1)

    def test_emst_byte_identical_at_any_budget(self, points):
        reference = emst(points)
        for budget in self.BUDGETS:
            result = emst(points, memory_budget=budget)
            for left, right in zip(
                reference.edges.as_arrays(), result.edges.as_arrays()
            ):
                assert np.array_equal(left, right), f"budget={budget}"

    def test_hdbscan_byte_identical_at_any_budget(self, points):
        reference = hdbscan(points, min_pts=8)
        for budget in self.BUDGETS:
            result = hdbscan(points, min_pts=8, memory_budget=budget)
            assert np.array_equal(
                reference.core_distances, result.core_distances
            ), f"budget={budget}"
            for left, right in zip(
                reference.mst.edges.as_arrays(), result.mst.edges.as_arrays()
            ):
                assert np.array_equal(left, right), f"budget={budget}"
            assert np.array_equal(
                reference.eom_labels(), result.eom_labels()
            ), f"budget={budget}"

    def test_budget_identity_with_threads(self, points):
        reference = emst(points, num_threads=4)
        result = emst(points, num_threads=4, memory_budget="1M")
        for left, right in zip(
            reference.edges.as_arrays(), result.edges.as_arrays()
        ):
            assert np.array_equal(left, right)

    def test_budget_peak_is_recorded(self, points):
        budget = MemoryBudget("8M")
        emst(points, memory_budget=budget)
        assert budget.peak_bytes > 0


class TestMemmapEndToEnd:
    @pytest.fixture
    def npy_file(self, tmp_path, points):
        path = tmp_path / "points.npy"
        np.save(path, points)
        return path

    def test_memmap_input_byte_identical(self, npy_file, points):
        mapped = open_memmap_points(npy_file)
        assert isinstance(mapped, np.memmap)
        assert not mapped.flags.writeable
        reference = emst(points)
        result = emst(mapped, memory_budget="8M")
        for left, right in zip(
            reference.edges.as_arrays(), result.edges.as_arrays()
        ):
            assert np.array_equal(left, right)
        clustering = hdbscan(mapped, min_pts=8, memory_budget="8M")
        assert np.array_equal(
            clustering.eom_labels(), hdbscan(points, min_pts=8).eom_labels()
        )

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(InvalidPointSetError, match="not found"):
            open_memmap_points(tmp_path / "absent.npy")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.npy"
        path.write_bytes(b"")
        with pytest.raises(InvalidPointSetError, match="empty"):
            open_memmap_points(path)

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "garbage.npy"
        path.write_bytes(b"this is not an npy file at all")
        with pytest.raises(InvalidPointSetError):
            open_memmap_points(path)

    def test_integer_dtype_raises(self, tmp_path):
        path = tmp_path / "ints.npy"
        np.save(path, np.arange(12).reshape(4, 3))
        with pytest.raises(InvalidPointSetError, match="float32 or float64"):
            open_memmap_points(path)

    def test_wrong_shape_raises(self, tmp_path):
        path = tmp_path / "flat.npy"
        np.save(path, np.zeros(7))
        with pytest.raises(InvalidPointSetError, match="shape"):
            open_memmap_points(path)


class TestEstimatorPlumbing:
    def test_params_round_trip(self):
        estimator = HDBSCAN(min_pts=5, memory_budget="16M")
        assert estimator.get_params()["memory_budget"] == "16M"
        cloned = HDBSCAN(**estimator.get_params())
        assert cloned.memory_budget == "16M"

    def test_labels_identical_under_budget(self, points):
        unbudgeted = HDBSCAN(min_pts=8).fit(points)
        budgeted = HDBSCAN(min_pts=8, memory_budget="16M").fit(points)
        assert np.array_equal(unbudgeted.labels_, budgeted.labels_)

    def test_emst_estimator_accepts_budget(self, points):
        fitted = EMST(memory_budget="16M").fit(points)
        assert fitted.edges_.shape == (points.shape[0] - 1, 2)

    @pytest.mark.parametrize("estimator_cls", [EMST, HDBSCAN])
    def test_fail_fast_on_nonsense(self, estimator_cls, points):
        with pytest.raises(InvalidParameterError):
            estimator_cls(memory_budget="12X").fit(points)


class TestCLIPlumbing:
    @pytest.fixture
    def csv_file(self, tmp_path):
        rng = np.random.default_rng(17)
        data = rng.random((60, 2))
        path = tmp_path / "points.csv"
        path.write_text("\n".join(f"{x},{y}" for x, y in data) + "\n")
        return path

    def test_budget_flag_output_identical(self, csv_file, tmp_path):
        plain = tmp_path / "plain.csv"
        budgeted = tmp_path / "budgeted.csv"
        assert cli_main(["emst", str(csv_file), "--output", str(plain)]) == 0
        assert (
            cli_main(
                [
                    "emst",
                    str(csv_file),
                    "--memory-budget",
                    "8M",
                    "--output",
                    str(budgeted),
                ]
            )
            == 0
        )
        assert plain.read_text() == budgeted.read_text()

    def test_npy_input_memmaps_under_budget(self, tmp_path):
        rng = np.random.default_rng(23)
        npy = tmp_path / "points.npy"
        np.save(npy, rng.random((50, 2)))
        out = tmp_path / "labels.csv"
        code = cli_main(
            [
                "hdbscan",
                str(npy),
                "--min-pts",
                "5",
                "--memory-budget",
                "4M",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        labels = out.read_text().strip().splitlines()
        assert labels[0] == "label"
        assert len(labels) == 51

    def test_nonsense_budget_exits_2(self, csv_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["emst", str(csv_file), "--memory-budget", "12X"])
        assert excinfo.value.code == 2
        assert "invalid memory size" in capsys.readouterr().err
