"""Tests for the flat structure-of-arrays kd-tree engine."""

import pickle

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.parallel.unionfind import UnionFind
from repro.spatial import FlatKDTree, KDTree
from repro.spatial.legacy import LegacyKDTree, legacy_knn
from repro.wspd import compute_wspd_ids


def exact_knn_reference(points, queries, k):
    diffs = queries[:, None, :] - points[None, :, :]
    full = np.sqrt(np.einsum("ijk,ijk->ij", diffs, diffs))
    return np.sort(full, axis=1)[:, :k]


class TestFlatConstruction:
    def test_perm_is_a_permutation(self, small_points_2d):
        flat = FlatKDTree(small_points_2d, leaf_size=4)
        assert sorted(flat.perm.tolist()) == list(range(len(small_points_2d)))

    def test_leaves_tile_the_permutation(self, small_points_3d):
        flat = FlatKDTree(small_points_3d, leaf_size=2)
        leaves = flat.leaf_ids()
        order = np.argsort(flat.node_start[leaves])
        starts = flat.node_start[leaves][order]
        ends = flat.node_end[leaves][order]
        assert starts[0] == 0
        assert ends[-1] == len(small_points_3d)
        assert np.array_equal(starts[1:], ends[:-1])

    def test_bounding_arrays_are_tight(self, small_points_3d):
        flat = FlatKDTree(small_points_3d, leaf_size=4)
        for node in range(flat.num_nodes):
            segment = small_points_3d[flat.point_indices(node)]
            assert np.allclose(flat.node_lower[node], segment.min(axis=0))
            assert np.allclose(flat.node_upper[node], segment.max(axis=0))

    def test_children_partition_parent_segment(self, small_points_2d):
        flat = FlatKDTree(small_points_2d, leaf_size=1)
        for node in range(flat.num_nodes):
            left = int(flat.left_child[node])
            right = int(flat.right_child[node])
            if left < 0:
                continue
            assert flat.node_start[left] == flat.node_start[node]
            assert flat.node_end[left] == flat.node_start[right]
            assert flat.node_end[right] == flat.node_end[node]

    def test_same_structure_as_legacy_object_tree(self, small_points_2d):
        """Both engines implement the identical spatial-median split rule."""
        flat = FlatKDTree(small_points_2d, leaf_size=3)
        legacy = LegacyKDTree(small_points_2d, leaf_size=3)
        flat_leaves = sorted(
            tuple(sorted(flat.point_indices(int(i)).tolist()))
            for i in flat.leaf_ids()
        )
        legacy_leaves = sorted(
            tuple(sorted(node.indices.tolist()))
            for node in legacy._nodes
            if node.is_leaf
        )
        assert flat_leaves == legacy_leaves

    def test_duplicate_points_terminate(self):
        flat = FlatKDTree(np.zeros((16, 3)), leaf_size=1)
        assert np.all(flat.node_sizes[flat.leaf_ids()] == 1)

    def test_single_point(self):
        flat = FlatKDTree(np.array([[1.0, 2.0]]))
        assert flat.num_nodes == 1
        assert flat.height == 0

    def test_invalid_leaf_size(self):
        with pytest.raises(InvalidParameterError):
            FlatKDTree(np.zeros((4, 2)), leaf_size=0)

    def test_pickle_roundtrip(self, small_points_2d):
        """Flat arrays are picklable/shareable, unlike node-object trees."""
        flat = FlatKDTree(small_points_2d, leaf_size=4)
        flat.annotate_core_distances(np.random.default_rng(0).random(len(small_points_2d)))
        clone = pickle.loads(pickle.dumps(flat))
        assert np.array_equal(clone.perm, flat.perm)
        assert np.array_equal(clone.left_child, flat.left_child)
        assert np.array_equal(clone.cd_min, flat.cd_min)


class TestBatchKnn:
    def test_exact_against_direct_reference(self, small_points_3d):
        flat = FlatKDTree(small_points_3d, leaf_size=8)
        _, distances = flat.query_knn(small_points_3d, 5)
        reference = exact_knn_reference(small_points_3d, small_points_3d, 5)
        assert np.allclose(distances, reference, rtol=1e-12, atol=0)

    def test_matches_legacy_traversal(self, small_points_2d):
        flat = FlatKDTree(small_points_2d, leaf_size=8)
        legacy = LegacyKDTree(small_points_2d, leaf_size=8)
        _, flat_d = flat.query_knn(small_points_2d, 6)
        _, legacy_d = legacy_knn(legacy, 6)
        assert np.allclose(flat_d, legacy_d, rtol=1e-12, atol=0)

    def test_indices_consistent_with_distances(self, small_points_2d):
        flat = FlatKDTree(small_points_2d, leaf_size=4)
        indices, distances = flat.query_knn(small_points_2d, 4)
        gathered = small_points_2d[indices] - small_points_2d[:, None, :]
        recomputed = np.sqrt(np.einsum("ijk,ijk->ij", gathered, gathered))
        assert np.allclose(recomputed, distances, rtol=1e-12, atol=0)

    def test_external_queries(self, small_points_2d):
        flat = FlatKDTree(small_points_2d, leaf_size=4)
        queries = np.random.default_rng(9).random((13, 2))
        _, distances = flat.query_knn(queries, 3)
        reference = exact_knn_reference(small_points_2d, queries, 3)
        assert np.allclose(distances, reference, rtol=1e-12, atol=0)

    def test_k_equals_n_on_tiny_leaves(self):
        points = np.random.default_rng(4).random((12, 2))
        flat = FlatKDTree(points, leaf_size=1)
        _, distances = flat.query_knn(points, 12)
        assert np.allclose(
            distances, exact_knn_reference(points, points, 12), rtol=1e-12, atol=0
        )

    def test_duplicates(self):
        points = np.zeros((10, 2))
        flat = FlatKDTree(points, leaf_size=2)
        _, distances = flat.query_knn(points, 4)
        assert np.allclose(distances, 0.0)


class TestTreeReductions:
    def test_node_value_ranges_match_bruteforce(self, small_points_2d):
        flat = FlatKDTree(small_points_2d, leaf_size=2)
        values = np.random.default_rng(5).random(len(small_points_2d))
        lo, hi = flat.node_value_ranges(values)
        for node in range(flat.num_nodes):
            segment = values[flat.point_indices(node)]
            assert lo[node] == pytest.approx(segment.min())
            assert hi[node] == pytest.approx(segment.max())

    def test_connectivity_snapshot_detects_components(self, small_points_2d):
        from repro.emst.gfk import connectivity_snapshot, pairs_fully_connected

        n = len(small_points_2d)
        flat = FlatKDTree(small_points_2d, leaf_size=1)
        union_find = UnionFind(n)
        for i in range(n - 1):
            union_find.union(i, i + 1)
        root_min, root_max = connectivity_snapshot(flat, union_find)
        assert np.all(root_min == root_max)
        every_pair_a = np.arange(flat.num_nodes, dtype=np.int64)
        connected = pairs_fully_connected(root_min, root_max, every_pair_a, every_pair_a)
        assert bool(connected.all())


class TestMaskWithinRadii:
    def test_matches_brute_force(self, small_points_3d):
        flat = FlatKDTree(small_points_3d, leaf_size=4)
        rng = np.random.default_rng(11)
        radii = rng.uniform(0.05, 0.4, size=len(small_points_3d))
        batch = rng.random((7, 3))
        mask = flat.mask_within_radii(batch, radii)
        nearest = np.sqrt(
            ((small_points_3d[:, None, :] - batch[None, :, :]) ** 2).sum(-1)
        ).min(axis=1)
        assert np.array_equal(mask, nearest <= radii)

    def test_strict_excludes_the_boundary(self):
        points = np.array([[0.0, 0.0], [3.0, 0.0]])
        flat = FlatKDTree(points, leaf_size=1)
        batch = np.array([[1.0, 0.0]])
        radii = np.array([1.0, 1.0])
        assert flat.mask_within_radii(batch, radii).tolist() == [True, False]
        assert flat.mask_within_radii(
            batch, radii, strict=True
        ).tolist() == [False, False]

    def test_lowered_backend_is_rejected(self, small_points_2d):
        """float32 node bounds could over-prune; the mask must stay exact."""
        flat = FlatKDTree(small_points_2d, backend="numpy-f32")
        radii = np.full(len(small_points_2d), 0.1)
        with pytest.raises(InvalidParameterError, match="exact backend"):
            flat.mask_within_radii(small_points_2d[:2], radii)


class TestWspdIds:
    def test_id_pairs_match_object_pairs(self, small_points_2d):
        tree = KDTree(small_points_2d, leaf_size=1)
        from repro.wspd import compute_wspd

        object_pairs = {
            (pair.node_a.node_id, pair.node_b.node_id)
            for pair in compute_wspd(tree)
        }
        a_ids, b_ids = compute_wspd_ids(tree)
        id_pairs = set(zip(a_ids.tolist(), b_ids.tolist()))
        assert id_pairs == object_pairs
