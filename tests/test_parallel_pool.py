"""Tests for the thread-pool helper and threaded k-NN agreement."""

import threading

import numpy as np

from repro.parallel.pool import parallel_map
from repro.spatial import KDTree, knn


class TestParallelMap:
    def test_sequential_path_preserves_order(self):
        assert parallel_map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]

    def test_empty_input(self):
        assert parallel_map(lambda x: x, []) == []
        assert parallel_map(lambda x: x, [], num_threads=4) == []

    def test_threaded_path_preserves_order(self):
        items = list(range(50))
        result = parallel_map(lambda x: x * x, items, num_threads=4)
        assert result == [x * x for x in items]

    def test_threaded_path_actually_uses_worker_threads(self):
        seen = set()

        def record(x):
            seen.add(threading.current_thread().name)
            return x

        parallel_map(record, list(range(64)), num_threads=4)
        assert any(name != threading.main_thread().name for name in seen)

    def test_chunk_threshold_degrades_to_sequential(self):
        seen = set()

        def record(x):
            seen.add(threading.current_thread().name)
            return x

        # Fewer items than chunk_threshold: must not spin up a pool.
        parallel_map(record, [1, 2], num_threads=8, chunk_threshold=5)
        assert seen == {threading.main_thread().name}

    def test_num_threads_none_zero_one_are_sequential(self):
        for num_threads in (None, 0, 1):
            assert parallel_map(lambda x: -x, [1, 2, 3], num_threads=num_threads) == [
                -1,
                -2,
                -3,
            ]

    def test_generator_input(self):
        assert parallel_map(lambda x: x + 1, (x for x in range(5)), num_threads=2) == [
            1,
            2,
            3,
            4,
            5,
        ]


class TestThreadedKnn:
    def test_two_threads_agree_with_sequential(self, small_points_3d):
        tree = KDTree(small_points_3d, leaf_size=8)
        seq_idx, seq_dist = knn(tree, 5)
        par_idx, par_dist = knn(tree, 5, num_threads=2)
        assert np.array_equal(seq_idx, par_idx)
        assert np.array_equal(seq_dist, par_dist)

    def test_two_threads_agree_on_external_queries(self, small_points_2d):
        tree = KDTree(small_points_2d, leaf_size=4)
        queries = np.random.default_rng(3).random((700, 2))
        seq_idx, seq_dist = knn(tree, 3, queries=queries)
        par_idx, par_dist = knn(tree, 3, queries=queries, num_threads=2)
        assert np.array_equal(seq_idx, par_idx)
        assert np.array_equal(seq_dist, par_dist)
