"""Tests for repro.core.points."""

import numpy as np
import pytest

from repro.core import InvalidPointSetError, PointSet, as_points, open_memmap_points
from repro.core.points import _FINITE_CHECK_ROWS, _all_finite


class TestAsPoints:
    def test_list_of_tuples(self):
        array = as_points([(0.0, 1.0), (2.0, 3.0)])
        assert array.shape == (2, 2)
        assert array.dtype == np.float64

    def test_preserves_values(self):
        data = [[1.5, -2.0], [0.0, 4.25]]
        array = as_points(data)
        assert np.array_equal(array, np.array(data))

    def test_accepts_existing_array_without_copy(self):
        original = np.zeros((5, 3), dtype=np.float64)
        array = as_points(original)
        assert array is original

    def test_copy_flag_forces_copy(self):
        original = np.zeros((5, 3), dtype=np.float64)
        array = as_points(original, copy=True)
        assert array is not original
        assert np.array_equal(array, original)

    def test_flat_input_becomes_one_dimensional_points(self):
        array = as_points([1.0, 2.0, 3.0])
        assert array.shape == (3, 1)

    def test_integer_input_converted_to_float(self):
        array = as_points([[1, 2], [3, 4]])
        assert array.dtype == np.float64

    def test_rejects_3d_array(self):
        with pytest.raises(InvalidPointSetError):
            as_points(np.zeros((2, 2, 2)))

    def test_rejects_zero_columns(self):
        with pytest.raises(InvalidPointSetError):
            as_points(np.zeros((4, 0)))

    def test_rejects_nan(self):
        with pytest.raises(InvalidPointSetError):
            as_points([[0.0, np.nan]])

    def test_rejects_infinity(self):
        with pytest.raises(InvalidPointSetError):
            as_points([[np.inf, 1.0]])

    def test_min_points_enforced(self):
        with pytest.raises(InvalidPointSetError):
            as_points(np.zeros((1, 2)), min_points=2)

    def test_min_points_satisfied(self):
        array = as_points(np.zeros((2, 2)), min_points=2)
        assert array.shape == (2, 2)

    def test_accepts_pointset_instance(self):
        point_set = PointSet([[0.0, 0.0], [1.0, 1.0]])
        array = as_points(point_set)
        assert array.shape == (2, 2)

    def test_non_contiguous_input_made_contiguous(self):
        base = np.zeros((10, 6))
        view = base[:, ::2]
        array = as_points(view)
        assert array.flags["C_CONTIGUOUS"]


class TestMemmapInputs:
    @pytest.fixture
    def npy_file(self, tmp_path):
        path = tmp_path / "points.npy"
        np.save(path, np.random.default_rng(0).random((40, 3)))
        return path

    def test_open_memmap_points_is_readonly_map(self, npy_file):
        mapped = open_memmap_points(npy_file)
        assert isinstance(mapped, np.memmap)
        assert not mapped.flags.writeable
        assert mapped.shape == (40, 3)
        assert np.array_equal(mapped, np.load(npy_file))

    def test_as_points_passes_memmap_through_uncopied(self, npy_file):
        mapped = open_memmap_points(npy_file)
        array = as_points(mapped)
        # Canonical float64 C-contiguous storage needs no copy: the result is
        # a zero-copy view over the mapped file, paged by the OS on demand.
        assert np.shares_memory(array, mapped)

    def test_pointset_wraps_memmap_without_copy(self, npy_file):
        mapped = open_memmap_points(npy_file)
        point_set = PointSet(mapped, copy=False)
        assert np.shares_memory(point_set.coordinates, mapped)
        assert point_set.size == 40

    def test_streamed_finiteness_check_matches_one_shot(self):
        tall = np.zeros((_FINITE_CHECK_ROWS + 7, 1))
        assert _all_finite(tall)
        tall[-1, 0] = np.nan  # in the final partial slice
        assert not _all_finite(tall)
        tall[-1, 0] = 0.0
        tall[3, 0] = np.inf  # in the first slice
        assert not _all_finite(tall)

    def test_memmap_with_nan_rejected_at_validation(self, tmp_path):
        path = tmp_path / "bad.npy"
        data = np.zeros((10, 2))
        data[4, 1] = np.nan
        np.save(path, data)
        with pytest.raises(InvalidPointSetError, match="NaN"):
            as_points(open_memmap_points(path))


class TestPointSet:
    def test_basic_properties(self):
        point_set = PointSet([[0.0, 0.0], [3.0, 4.0], [1.0, 2.0]])
        assert point_set.size == 3
        assert point_set.dimension == 2
        assert len(point_set) == 3

    def test_bounds(self):
        point_set = PointSet([[0.0, -1.0], [3.0, 4.0]])
        assert np.array_equal(point_set.lower_bound, [0.0, -1.0])
        assert np.array_equal(point_set.upper_bound, [3.0, 4.0])

    def test_coordinates_are_read_only(self):
        point_set = PointSet([[0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(ValueError):
            point_set.coordinates[0, 0] = 5.0

    def test_indexing_and_iteration(self):
        point_set = PointSet([[0.0, 0.0], [1.0, 1.0]])
        assert np.array_equal(point_set[1], [1.0, 1.0])
        assert len(list(iter(point_set))) == 2

    def test_repr_mentions_shape(self):
        point_set = PointSet([[0.0, 0.0], [1.0, 1.0]])
        assert "n=2" in repr(point_set)
        assert "d=2" in repr(point_set)

    def test_construction_copies_input(self):
        data = np.ones((3, 2))
        point_set = PointSet(data)
        data[0, 0] = 99.0
        assert point_set[0, 0] == 1.0
