"""Tests for the incremental insert/delete engine (:mod:`repro.dynamic`).

The engine's entire contract is one sentence: after ANY interleaved
insert/delete sequence, the updated state is byte-identical to a cold
``fit_dynamic`` of the surviving points — every saved array, every derived
label.  The conformance matrix here drives that gate across seeds ×
pipelines (EMST via ``min_pts=1``, HDBSCAN) × thread counts × metrics ×
backends × memory budgets, and the degenerate-shape tests push the same
gate through empty/singleton/duplicate territory where index bookkeeping
usually dies.
"""

import io
import json

import numpy as np
import pytest

from conformance import (
    CONFORMANCE_MEMORY_BUDGETS,
    CONFORMANCE_METRICS,
    skip_unless_backend_available,
)
from repro.core.errors import FitStateError, InvalidParameterError
from repro.datasets import gaussian_blobs
from repro.dynamic import delete_batch, fit_dynamic, insert_batch
from repro.serve import ServingEngine, fit_state

MIN_PTS = 5
MIN_CLUSTER_SIZE = 5

#: min_pts values selecting the two pipelines the issue gates: 1 makes
#: mutual reachability collapse to the plain metric (the EMST pipeline),
#: anything larger exercises the full HDBSCAN core-distance path.
PIPELINE_MIN_PTS = (1, MIN_PTS)

#: Thread counts for the dynamic matrix (1 = inline, 4 = sharded).
DYNAMIC_THREAD_COUNTS = (1, 4)

CHURN_SEEDS = (7, 19, 101)


def state_bytes(state):
    """Every persisted array of a state, keyed, as raw bytes."""
    return {
        name: (np.asarray(value).dtype.str, np.asarray(value).tobytes())
        for name, value in state.state_arrays().items()
    }


def assert_states_identical(updated, cold, context=""):
    """The conformance gate: byte-identity of every array, then labels."""
    got, want = state_bytes(updated), state_bytes(cold)
    assert set(got) == set(want), context
    for name in sorted(want):
        assert got[name] == want[name], f"{context}: array {name!r} differs"
    if updated.num_points:
        assert (
            updated.recut().labels.tobytes() == cold.recut().labels.tobytes()
        ), context


def churn(state, live, rng, *, rounds=3, num_threads=None):
    """Apply interleaved insert/delete rounds; returns (state, live points)."""
    dim = live.shape[1]
    for _ in range(rounds):
        batch = rng.standard_normal((rng.integers(5, 20), dim))
        state = insert_batch(state, batch, num_threads=num_threads)
        live = np.concatenate([live, batch])
        removed = rng.choice(
            live.shape[0], size=min(int(rng.integers(5, 25)), live.shape[0]),
            replace=False,
        )
        state = delete_batch(state, removed, num_threads=num_threads)
        keep = np.ones(live.shape[0], dtype=bool)
        keep[removed] = False
        live = live[keep]
    return state, live


class TestConformanceMatrix:
    """Interleaved churn must end byte-identical to a cold refit."""

    @pytest.mark.parametrize("seed", CHURN_SEEDS)
    @pytest.mark.parametrize("min_pts", PIPELINE_MIN_PTS)
    @pytest.mark.parametrize("threads", DYNAMIC_THREAD_COUNTS)
    def test_churn_matches_cold_refit(self, seed, min_pts, threads):
        rng = np.random.default_rng(seed)
        points = gaussian_blobs(300, 3, num_clusters=4, seed=seed)
        state = fit_dynamic(
            points, min_pts=min_pts, min_cluster_size=MIN_CLUSTER_SIZE,
            num_threads=threads,
        )
        state, live = churn(state, points.copy(), rng, num_threads=threads)
        cold = fit_dynamic(
            live, min_pts=min_pts, min_cluster_size=MIN_CLUSTER_SIZE,
            num_threads=threads,
        )
        assert_states_identical(
            state, cold, f"seed={seed} min_pts={min_pts} threads={threads}"
        )

    @pytest.mark.parametrize("metric", CONFORMANCE_METRICS)
    def test_churn_across_metrics(self, metric):
        rng = np.random.default_rng(23)
        points = gaussian_blobs(250, 3, num_clusters=4, seed=23)
        state = fit_dynamic(points, min_pts=MIN_PTS, metric=metric)
        state, live = churn(state, points.copy(), rng)
        cold = fit_dynamic(live, min_pts=MIN_PTS, metric=metric)
        assert_states_identical(state, cold, f"metric={metric}")

    @pytest.mark.parametrize("backend", ("numpy", "numba"))
    def test_churn_across_exact_backends(self, backend):
        skip_unless_backend_available(backend)
        rng = np.random.default_rng(31)
        points = gaussian_blobs(200, 3, num_clusters=3, seed=31)
        state = fit_dynamic(points, min_pts=MIN_PTS, backend=backend)
        state, live = churn(state, points.copy(), rng)
        cold = fit_dynamic(live, min_pts=MIN_PTS, backend=backend)
        assert_states_identical(state, cold, f"backend={backend}")

    @pytest.mark.parametrize("budget", CONFORMANCE_MEMORY_BUDGETS)
    def test_churn_under_memory_budget(self, budget):
        rng = np.random.default_rng(41)
        points = gaussian_blobs(200, 3, num_clusters=3, seed=41)
        state = fit_dynamic(points, min_pts=MIN_PTS, memory_budget=budget)
        state, live = churn(state, points.copy(), rng)
        # The cold reference runs unbudgeted: budgets may never change bytes.
        cold = fit_dynamic(live, min_pts=MIN_PTS)
        assert_states_identical(state, cold, f"budget={budget}")

    def test_update_is_thread_count_invariant(self):
        rng = np.random.default_rng(53)
        points = gaussian_blobs(200, 3, num_clusters=3, seed=53)
        batch = rng.standard_normal((15, 3))
        results = []
        for threads in DYNAMIC_THREAD_COUNTS:
            state = fit_dynamic(points, min_pts=MIN_PTS, num_threads=threads)
            state = insert_batch(state, batch, num_threads=threads)
            state = delete_batch(
                state, np.arange(0, 40, 3), num_threads=threads
            )
            results.append(state_bytes(state))
        assert results[0] == results[1]


class TestDegenerateShapes:
    """The conformance gate through empty / singleton / duplicate territory."""

    @pytest.fixture(scope="class")
    def cloud(self):
        return gaussian_blobs(40, 3, num_clusters=2, seed=5)

    def test_insert_into_empty_then_grow(self, cloud):
        state = fit_dynamic(cloud[:0], min_pts=4)
        assert state.num_points == 0
        state = insert_batch(state, cloud[:1])
        assert_states_identical(state, fit_dynamic(cloud[:1], min_pts=4))
        state = insert_batch(state, cloud[1:10])
        assert_states_identical(state, fit_dynamic(cloud[:10], min_pts=4))

    def test_insert_into_singleton(self, cloud):
        state = fit_dynamic(cloud[:1], min_pts=4)
        state = insert_batch(state, cloud[1:3])
        assert_states_identical(state, fit_dynamic(cloud[:3], min_pts=4))

    def test_delete_down_to_two_one_zero(self, cloud):
        state = fit_dynamic(cloud[:10], min_pts=4)
        state = delete_batch(state, np.arange(8))
        assert_states_identical(state, fit_dynamic(cloud[8:10], min_pts=4))
        state = delete_batch(state, np.array([0]))
        assert_states_identical(state, fit_dynamic(cloud[9:10], min_pts=4))
        state = delete_batch(state, np.array([0]))
        assert state.num_points == 0
        # An emptied state must be repopulatable.
        state = insert_batch(state, cloud[:6])
        assert_states_identical(state, fit_dynamic(cloud[:6], min_pts=4))

    def test_delete_then_reinsert_same_points(self, cloud):
        state = fit_dynamic(cloud, min_pts=4)
        state = delete_batch(state, np.arange(5, 15))
        state = insert_batch(state, cloud[5:15])
        survivors = np.concatenate(
            [np.delete(cloud, np.arange(5, 15), axis=0), cloud[5:15]]
        )
        assert_states_identical(state, fit_dynamic(survivors, min_pts=4))

    def test_duplicate_point_batches(self, cloud):
        state = fit_dynamic(cloud, min_pts=4)
        state = insert_batch(state, cloud[:7])  # exact duplicates
        assert_states_identical(
            state, fit_dynamic(np.concatenate([cloud, cloud[:7]]), min_pts=4)
        )
        state = insert_batch(state, cloud[:7])  # the same batch again
        assert_states_identical(
            state,
            fit_dynamic(
                np.concatenate([cloud, cloud[:7], cloud[:7]]), min_pts=4
            ),
        )

    def test_large_batch_takes_rebuild_path(self, cloud):
        rng = np.random.default_rng(11)
        state = fit_dynamic(cloud, min_pts=4)
        big = rng.standard_normal((200, 3))
        state = insert_batch(state, big)
        assert_states_identical(
            state, fit_dynamic(np.concatenate([cloud, big]), min_pts=4)
        )
        state = delete_batch(state, np.arange(0, 200, 2))
        survivors = np.delete(
            np.concatenate([cloud, big]), np.arange(0, 200, 2), axis=0
        )
        assert_states_identical(state, fit_dynamic(survivors, min_pts=4))


class TestValidationAndAdoption:
    """Parameter validation, foreign-state adoption, empty-state limits."""

    @pytest.fixture(scope="class")
    def cloud(self):
        return gaussian_blobs(80, 3, num_clusters=2, seed=13)

    def test_lowered_backend_rejected(self, cloud):
        with pytest.raises(InvalidParameterError, match="exact float64"):
            fit_dynamic(cloud, min_pts=4, backend="numpy-f32")

    def test_delete_validates_indices(self, cloud):
        state = fit_dynamic(cloud, min_pts=4)
        with pytest.raises(InvalidParameterError):
            delete_batch(state, np.array([cloud.shape[0]]))
        with pytest.raises(InvalidParameterError):
            delete_batch(state, np.array([-1]))
        with pytest.raises(InvalidParameterError):
            delete_batch(state, np.array([3, 3]))
        with pytest.raises(InvalidParameterError):
            delete_batch(state, np.array([0.5]))

    def test_insert_validates_dimension(self, cloud):
        state = fit_dynamic(cloud, min_pts=4)
        with pytest.raises(InvalidParameterError):
            insert_batch(state, np.zeros((2, cloud.shape[1] + 1)))

    def test_empty_batches_are_noops(self, cloud):
        state = fit_dynamic(cloud, min_pts=4)
        assert insert_batch(state, np.empty((0, 3))) is state
        assert delete_batch(state, np.empty(0, dtype=np.int64)) is state

    def test_foreign_state_is_adopted(self, cloud):
        # A state fitted by the static serving path has no repair support;
        # the first update adopts it with one dynamic refit, after which
        # the conformance gate applies as usual.
        foreign = fit_state(
            cloud, min_pts=4, min_cluster_size=MIN_CLUSTER_SIZE
        )
        batch = gaussian_blobs(12, 3, num_clusters=1, seed=17)
        updated = insert_batch(foreign, batch)
        cold = fit_dynamic(
            np.concatenate([cloud, batch]),
            min_pts=4,
            min_cluster_size=MIN_CLUSTER_SIZE,
        )
        assert_states_identical(updated, cold, "adopted foreign state")

    def test_empty_state_cannot_be_saved(self, tmp_path):
        state = fit_dynamic(np.empty((0, 3)), min_pts=4)
        with pytest.raises(FitStateError, match="empty state"):
            state.save(tmp_path / "empty.npz")


class TestServingUpdateOp:
    """The ``update`` op mutates the served set with cold-refit conformance."""

    def test_update_op_matches_cold_refit(self):
        points = gaussian_blobs(120, 3, num_clusters=3, seed=29)
        batch = gaussian_blobs(10, 3, num_clusters=1, seed=30)
        engine = ServingEngine(
            fit_dynamic(points, min_pts=4, min_cluster_size=MIN_CLUSTER_SIZE)
        )
        response = engine.handle(
            {
                "op": "update",
                "delete": [0, 5, 17],
                "insert": batch.tolist(),
            }
        )
        assert response["ok"]
        assert response["deleted"] == 3
        assert response["inserted"] == 10
        assert response["num_points"] == 127
        survivors = np.concatenate(
            [np.delete(points, [0, 5, 17], axis=0), batch]
        )
        cold = fit_dynamic(
            survivors, min_pts=4, min_cluster_size=MIN_CLUSTER_SIZE
        )
        assert_states_identical(engine.state, cold, "serving update op")
        # Subsequent reads serve the updated state.
        labels = engine.handle({"op": "labels"})
        assert labels["ok"]
        assert labels["labels"] == cold.recut().labels.tolist()

    def test_update_requires_a_mutation(self):
        engine = ServingEngine(
            fit_dynamic(gaussian_blobs(50, 2, seed=1), min_pts=4)
        )
        response = engine.handle({"op": "update"})
        assert not response["ok"]
        assert "insert" in response["error"]

    def test_failed_update_leaves_state_untouched(self):
        state = fit_dynamic(gaussian_blobs(50, 2, seed=2), min_pts=4)
        engine = ServingEngine(state)
        response = engine.handle({"op": "update", "delete": [10**6]})
        assert not response["ok"]
        assert engine.state is state

    def test_fractional_delete_indices_are_rejected(self):
        """0.9 must not silently truncate to row 0 — reject, don't cast."""
        state = fit_dynamic(gaussian_blobs(50, 2, seed=2), min_pts=4)
        engine = ServingEngine(state)
        response = engine.handle({"op": "update", "delete": [0.9]})
        assert not response["ok"]
        assert "integer" in response["error"]
        assert engine.state is state

    def test_concurrent_updates_in_one_batch_compose(self):
        """Updates serialize: neither of two batched inserts is lost."""
        points = gaussian_blobs(60, 2, num_clusters=2, seed=5)
        engine = ServingEngine(fit_dynamic(points, min_pts=4))
        rng = np.random.default_rng(6)
        requests = [
            {"op": "update", "insert": rng.standard_normal((3, 2)).tolist()}
            for _ in range(4)
        ]
        responses = engine.handle_batch(requests, num_threads=4)
        assert [r["ok"] for r in responses] == [True] * 4
        assert engine.state.num_points == 60 + 12

    def test_predict_against_emptied_state_is_noise(self):
        """Deleting every point must not crash the serve loop on predict."""
        points = gaussian_blobs(30, 2, num_clusters=2, seed=3)
        engine = ServingEngine(fit_dynamic(points, min_pts=4))
        wiped = engine.handle({"op": "update", "delete": list(range(30))})
        assert wiped["ok"] and wiped["num_points"] == 0
        lines = "\n".join(
            [
                json.dumps({"op": "predict", "points": [[0.0, 0.0]]}),
                json.dumps({"op": "stats"}),
            ]
        )
        output = io.StringIO()
        answered = engine.serve_stream(io.StringIO(lines), output)
        responses = [
            json.loads(line) for line in output.getvalue().splitlines()
        ]
        assert answered == 2
        assert responses[0]["ok"]
        assert responses[0]["labels"] == [-1]
        assert responses[0]["probabilities"] == [0.0]
        assert responses[1]["ok"]
