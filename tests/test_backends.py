"""Unit tests for the kernel-backend registry and the float32 lowering.

The cross-method/-backend agreement contracts live in the conformance matrix
(``tests/test_conformance.py``); this module covers the registry mechanics —
resolution, fallback, scoping, the environment default — and the kernel-level
properties of the lowered float32 path that the matrix only exercises
end to end.
"""

from __future__ import annotations

import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro.core.backend import (
    BACKEND_NAMES,
    BACKENDS,
    HAVE_NUMBA,
    BackendFallbackWarning,
    KernelBackend,
    available_backends,
    get_default_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.core.errors import InvalidParameterError
from repro.core.metric import EUCLIDEAN, resolve_metric
from repro.emst.api import emst
from repro.estimators import EMST, HDBSCAN
from repro.spatial.kdtree import KDTree
from repro.spatial.knn import knn, knn_bruteforce


@pytest.fixture
def points():
    return np.random.default_rng(7).random((200, 3))


class TestRegistry:
    def test_registered_names(self):
        assert BACKEND_NAMES == ("numpy", "numpy-f32", "numba", "numba-f32")

    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        assert "numpy-f32" in available_backends()

    def test_resolve_by_name_and_instance(self):
        backend = resolve_backend("numpy")
        assert backend is BACKENDS["numpy"]
        assert resolve_backend(backend) is backend
        assert resolve_backend("  NumPy ") is backend  # normalized

    def test_resolve_none_is_ambient_default(self):
        assert resolve_backend(None) is get_default_backend()

    def test_unknown_name_lists_available(self):
        with pytest.raises(InvalidParameterError, match="available backends"):
            resolve_backend("cuda")

    def test_non_string_non_backend_rejected(self):
        with pytest.raises(InvalidParameterError):
            resolve_backend(42)

    def test_exact_vs_lowered_flags(self):
        assert BACKENDS["numpy"].exact and not BACKENDS["numpy"].lowered
        assert BACKENDS["numpy-f32"].lowered and not BACKENDS["numpy-f32"].exact
        assert BACKENDS["numba"].scoring_dtype == np.float64
        assert BACKENDS["numba-f32"].scoring_dtype == np.float32

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed; no fallback")
    def test_unavailable_backend_falls_back_with_warning(self):
        with pytest.warns(BackendFallbackWarning, match="falling back"):
            assert resolve_backend("numba") is BACKENDS["numpy"]
        with pytest.warns(BackendFallbackWarning):
            assert resolve_backend("numba-f32") is BACKENDS["numpy-f32"]

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_numba_resolves_when_available(self):
        assert resolve_backend("numba") is BACKENDS["numba"]


class TestDefaultScoping:
    def test_use_backend_scopes_and_restores(self):
        before = get_default_backend()
        with use_backend("numpy-f32") as active:
            assert active is BACKENDS["numpy-f32"]
            assert get_default_backend() is active
        assert get_default_backend() is before

    def test_use_backend_none_keeps_current(self):
        before = get_default_backend()
        with use_backend(None) as active:
            assert active is before

    def test_set_default_backend(self):
        before = get_default_backend()
        try:
            assert set_default_backend("numpy-f32") is BACKENDS["numpy-f32"]
            tree = KDTree(np.zeros((4, 2)) + np.arange(4)[:, None])
            assert tree.backend is BACKENDS["numpy-f32"]
        finally:
            set_default_backend(before)

    def test_set_default_backend_rejects_none(self):
        with pytest.raises(InvalidParameterError):
            set_default_backend(None)

    def test_env_var_initializes_default(self):
        code = (
            "from repro.core.backend import get_default_backend;"
            "print(get_default_backend().name)"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "REPRO_BACKEND": "numpy-f32"},
        )
        assert out.stdout.strip() == "numpy-f32"

    def test_env_var_bad_name_warns_and_keeps_numpy(self):
        code = (
            "import warnings; warnings.simplefilter('ignore');"
            "from repro.core.backend import get_default_backend;"
            "print(get_default_backend().name)"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "REPRO_BACKEND": "not-a-backend"},
        )
        assert out.stdout.strip() == "numpy"


class TestLowering:
    def test_lower_points_exact_is_alias(self, points):
        assert BACKENDS["numpy"].lower_points(points) is points

    def test_lower_points_f32_copies_once(self, points):
        lowered = BACKENDS["numpy-f32"].lower_points(points)
        assert lowered.dtype == np.float32
        # Already-lowered input passes through without another copy.
        assert BACKENDS["numpy-f32"].lower_points(lowered) is lowered

    def test_tree_scoring_points(self, points):
        exact_tree = KDTree(points, backend="numpy")
        assert exact_tree.flat.scoring_points is exact_tree.flat.points
        lowered_tree = KDTree(points, backend="numpy-f32")
        assert lowered_tree.flat.scoring_points.dtype == np.float32
        assert lowered_tree.flat.points.dtype == np.float64
        # Node arrays follow the scoring dtype.
        assert lowered_tree.flat.node_lower.dtype == np.float32
        assert exact_tree.flat.node_lower.dtype == np.float64

    def test_lowered_knn_distances_are_exact_float64(self, points):
        idx64, dist64 = knn_bruteforce(points, 5, backend="numpy")
        idx32, dist32 = knn_bruteforce(points, 5, backend="numpy-f32")
        assert dist32.dtype == np.float64
        np.testing.assert_allclose(dist32, dist64, rtol=1e-6, atol=1e-7)

    def test_lowered_tree_knn_matches(self, points):
        tree64 = KDTree(points, leaf_size=8, backend="numpy")
        tree32 = KDTree(points, leaf_size=8, backend="numpy-f32")
        idx64, dist64 = knn(tree64, 5)
        idx32, dist32 = knn(tree32, 5)
        assert dist32.dtype == np.float64
        np.testing.assert_allclose(dist32, dist64, rtol=1e-6, atol=1e-7)

    def test_lowered_emst_weights_are_refined_float64(self, points):
        exact = emst(points, backend="numpy")
        lowered = emst(points, backend="numpy-f32")
        weights = lowered.edges.as_arrays()[2]
        assert weights.dtype == np.float64
        # Selections may swap near-ties; the weight profile stays put.
        np.testing.assert_allclose(
            np.sort(weights),
            np.sort(exact.edges.as_arrays()[2]),
            rtol=1e-5,
            atol=1e-7,
        )

    def test_float32_input_rides_without_upcast(self, points):
        lowered = BACKENDS["numpy-f32"]
        f32 = np.ascontiguousarray(points, dtype=np.float32)
        assert lowered.lower_points(f32) is f32


class TestKernelParity:
    """Backend kernels against the metric's own reference kernels."""

    @pytest.mark.parametrize("name", ("euclidean", "manhattan", "minkowski:3"))
    def test_cross_distances_delegates(self, name, points):
        metric = resolve_metric(name)
        a, b = points[:40], points[40:90]
        expected = metric.cross_distances(a, b)
        for backend_name in available_backends():
            got = BACKENDS[backend_name].cross_distances(metric, a, b)
            np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_knn_chunk_matches_bruteforce(self, points):
        idx, dist = BACKENDS["numpy"].knn_chunk(EUCLIDEAN, points, points, 4)
        full = EUCLIDEAN.cross_distances(points, points)
        expected = np.sort(full, axis=1)[:, :4]
        np.testing.assert_allclose(dist, expected, rtol=1e-12)


class TestEstimatorBackendParam:
    def test_get_set_params_roundtrip(self):
        model = EMST(backend="numpy-f32")
        params = model.get_params()
        assert params["backend"] == "numpy-f32"
        model.set_params(backend="numpy")
        assert model.backend == "numpy"
        hdb = HDBSCAN()
        assert "backend" in hdb.get_params()
        hdb.set_params(backend="numpy-f32")
        assert hdb.get_params()["backend"] == "numpy-f32"

    def test_bad_backend_fails_fast(self, points):
        with pytest.raises(InvalidParameterError, match="available backends"):
            EMST(backend="nope").fit(points)
        with pytest.raises(InvalidParameterError, match="available backends"):
            HDBSCAN(backend="nope").fit(points)

    def test_lowered_fit_produces_float64(self, points):
        model = EMST(backend="numpy-f32").fit(points)
        assert model.weights_.dtype == np.float64
        reference = EMST(backend="numpy").fit(points)
        assert model.total_weight_ == pytest.approx(
            reference.total_weight_, rel=1e-5
        )


class TestEntryPointFallback:
    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed; no fallback")
    def test_emst_numba_falls_back(self, points):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = emst(points[:50], backend="numba")
        assert any(
            issubclass(w.category, BackendFallbackWarning) for w in caught
        )
        assert result.num_edges == 49

    def test_custom_backend_instance(self, points):
        backend = KernelBackend("numpy", np.float64)
        result = emst(points[:50], backend=backend)
        assert result.num_edges == 49
